"""Bitset fast-path implementations of BR, RR1–RR5 and UB1–UB3.

This module is the word-parallel twin of :mod:`repro.core.branching`,
:mod:`repro.core.reductions` and :mod:`repro.core.bounds`: every rule has the
same pruning semantics as its set-based counterpart (so both backends return
identical optimal sizes), but operates on the packed
:class:`~repro.core.bitset_state.BitsetSearchState` representation.

Performance notes
-----------------
Pure-Python bit iteration is the dominant cost of a bitset kernel, so the
inner loops share two disciplines:

* candidate scans materialise the set bits once via
  :func:`~repro.core.bitset_state.bits_of` (a byte-table walk over
  ``int.to_bytes`` whose per-element cost is several times lower than
  repeated ``mask & -mask`` extraction) and then iterate the list at C speed;
* the engine extracts the candidate list and the instance-graph degrees once
  per node and shares them between UB3, UB1 and the branching rule — the
  state is not mutated between those steps.

:class:`BitsetEngine` is the branch-and-bound driver over that state.  It is
deliberately incumbent-*sharing*: the caller hands it a mutable ``incumbent``
list which the engine grows in place whenever it finds a larger k-defective
clique.  The degeneracy decomposition in :mod:`repro.core.decompose` exploits
this to thread one global lower bound through hundreds of ego subproblems, so
RR5/UB pruning discards most of them without branching.

Trail engine invariants
-----------------------
``SolverConfig.engine`` selects between two drivers.  ``"copy"`` is the
original copy-per-child engine: the include branch copies the whole state,
the exclude branch mutates it in place, and every node re-runs full
reduction sweeps and a fresh coloring.  ``"trail"`` (the default) keeps ONE
mutable state for the whole search and makes a node's cost proportional to
what changed, resting on three invariants:

1. **Trail (undo stack).**  Every ``add_to_solution`` / ``remove_candidate``
   pushes a reversible delta onto the state's trail
   (:meth:`BitsetSearchState.rewind_to` pops them LIFO).  The engine takes a
   mark at node entry and rewinds to it when the node's subtree is explored,
   so after any branch+backtrack the state is restored bit-for-bit — the
   push/pop property tests pin exactly this.

2. **Dirty-vertex worklists.**  Reductions are re-run only over vertices an
   event could actually have re-enabled (:class:`ReductionWorklist`):

   * RR1 (``|\\bar{N}_S(v)| > k - |\\bar{E}(S)|``) can newly fire only after
     a vertex ``w`` joins ``S`` — for every candidate if the budget shrank
     (``non_nbrs[w] > 0``), else only for ``cand \\ N(w)``;
   * RR2 can newly fire only after a *removal* ``u`` (the removal shrinks a
     candidate's non-neighbourhood inside ``g``), and only for
     ``cand \\ N(u)`` — additions monotonically disqualify;
   * RR5 (degree < ``lb - k``) can newly fire only for neighbours of a
     removed vertex, or for everyone when the incumbent (hence the
     threshold) rose since the inherited fixpoint — the engine tracks the
     lower bound each node's RR5 fixpoint was computed at and fully dirties
     RR5 when a node starts with a larger incumbent;
   * RR3 and RR4 are global (sorted-prefix / pairwise-with-``last_added``)
     rules: they keep rule-level dirty flags driven by the same events.

   A vertex is removed from a queue either by being scanned (counted in
   ``SearchStats.dirty_drained``) or by leaving the instance graph.

3. **Repairable coloring bound.**  UB1's colour classes are kept as
   bitmasks.  Deleting vertices keeps every class an independent set, so a
   child *repairs* the inherited classes (one ``&`` per class against the
   surviving candidates) instead of recoloring.  A full degree-ordered
   recolor runs when the staleness counter trips
   ``SolverConfig.recolor_period`` — or earlier, when the repaired bound
   lands within :data:`_RECOLOR_MARGIN` of the incumbent, i.e. exactly when
   a tighter partition could still prune (``recolor_full`` /
   ``recolor_repair`` count both paths).  With ``recolor_period=1`` the
   trail engine recolors every node and is node-for-node identical to the
   copy engine — the lockstep differential tests run exactly that
   configuration.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .bitset_state import BitsetSearchState, bits_of
from .config import SolverConfig
from .result import SearchStats

__all__ = [
    "ReductionWorklist",
    "bitset_rr1",
    "bitset_rr2",
    "bitset_rr3",
    "bitset_rr4",
    "bitset_rr5",
    "bitset_apply_reductions",
    "bitset_color_classes",
    "bitset_ub1_from_classes",
    "bitset_ub1_improved_coloring",
    "bitset_ub2_min_degree",
    "bitset_ub3_degree_sequence",
    "bitset_select_branching_vertex",
    "BitsetEngine",
]

#: "Every vertex" sentinel for dirty masks (``-1 & cand_bits == cand_bits``).
_ALL_DIRTY = -1

#: Trail engine: when a *repaired* coloring bound lands within this margin
#: above the incumbent, a fresh (tighter) coloring might still prune, so the
#: node escalates to a full recolor; further above, staleness cannot change
#: the outcome and the repair is the whole cost.
_RECOLOR_MARGIN = 1


class ReductionWorklist:
    """Per-node dirty-vertex queues driving worklist-mode reductions.

    One bitmask per vertex-local rule (``rr1``, ``rr2``, ``rr5``); a set bit
    means the vertex must be re-examined by that rule before the node's
    reductions are at fixpoint.  :data:`_ALL_DIRTY` (``-1``) marks every
    vertex dirty.  The rules notify the worklist of the two events that
    propagate dirtiness (see the module docstring's protocol).

    The two global rules have no per-vertex queues of their own; the caller
    seeds their initial work instead: ``rr3`` (bool) requests the RR3 sweep,
    ``rr4`` is the candidate mask RR4 may scan (``_ALL_DIRTY`` for a full
    sweep, typically ``adj[b]`` on an exclude transition).  Rule progress
    inside the drain re-requests RR3 exactly as the flag protocol does.
    """

    __slots__ = ("rr1", "rr2", "rr5", "rr3", "rr4")

    def __init__(
        self, rr1: int = 0, rr2: int = 0, rr5: int = 0,
        rr3: bool = True, rr4: int = _ALL_DIRTY,
    ) -> None:
        self.rr1 = rr1
        self.rr2 = rr2
        self.rr5 = rr5
        self.rr3 = rr3
        self.rr4 = rr4

    def note_removed_batch(self, state: BitsetSearchState, adj_and: int, adj_or: int) -> None:
        """Batched :meth:`note_removed` for a whole removal sweep.

        ``adj_and`` / ``adj_or`` are the intersection / union of the removed
        vertices' adjacency rows.  For the *surviving* candidates
        ``cand & ~adj_and`` equals the union of the per-removal
        ``cand & ~adj[u]`` events, so one batched update costs two word-ops
        total instead of two per removal.
        """
        self.rr2 |= state.cand_bits & ~adj_and
        self.rr5 |= adj_or

    def note_added(self, state: BitsetSearchState, v: int) -> None:
        """Vertex ``v`` joined ``S``: dirty RR1 (everyone if the budget shrank)."""
        if state.non_nbrs[v]:
            self.rr1 = _ALL_DIRTY
        else:
            self.rr1 |= state.cand_bits & ~state.adj[v]


# --------------------------------------------------------------------------- #
# Reduction rules
# --------------------------------------------------------------------------- #
def bitset_rr1(
    state: BitsetSearchState,
    stats: Optional[SearchStats] = None,
    mask: Optional[int] = None,
    worklist: Optional[ReductionWorklist] = None,
) -> int:
    """RR1 (excess-removal): drop candidates whose inclusion would exceed ``k`` missing edges.

    With ``mask`` only the masked candidates are scanned (worklist mode);
    a vertex outside the mask provably cannot violate RR1 given the
    previously reached fixpoint.
    """
    budget = state.k - state.missing_in_solution
    adj = state.adj
    non_nbrs = state.non_nbrs
    removed = 0
    adj_and = _ALL_DIRTY
    adj_or = 0
    if mask is None:
        scan_list = state.candidate_list()
    else:
        scan_list = bits_of(state.cand_bits & mask)
        if stats is not None:
            stats.dirty_drained += len(scan_list)
    for v in scan_list:
        if non_nbrs[v] > budget:
            state.remove_candidate(v)
            if worklist is not None:
                adj_v = adj[v]
                adj_and &= adj_v
                adj_or |= adj_v
            removed += 1
    if removed and worklist is not None:
        worklist.note_removed_batch(state, adj_and, adj_or)
    if stats is not None:
        stats.count_reduction("RR1", removed)
    return removed


def bitset_rr2(
    state: BitsetSearchState,
    stats: Optional[SearchStats] = None,
    mask: Optional[int] = None,
    worklist: Optional[ReductionWorklist] = None,
    root_degrees: Optional[List[int]] = None,
) -> int:
    """RR2 (high-degree): greedily move candidates adjacent to all but ≤ 1 vertex of ``g`` into ``S``.

    With ``mask`` only the masked candidates are examined.  The invariant
    maintained by the worklist protocol is that every currently-qualifying
    candidate is in the mask, so the lowest qualifying vertex inside the
    mask is the lowest qualifying vertex overall — the greedy pick is
    identical to a full scan.  A scanned non-qualifier is dropped from the
    mask: additions can only disqualify further, and any removal that could
    re-qualify it re-dirties it through :meth:`ReductionWorklist.note_removed`.

    ``root_degrees`` (each vertex's degree in the engine's root instance)
    enables an exact integer-only pre-filter: qualification means
    ``deg_g(v) >= |V(g)| - 2``, and degrees only shrink, so
    ``root_degrees[v] < |V(g)| - 2`` proves non-qualification without
    touching a bitmask — which is what keeps RR2 cheap on sparse instances,
    where nearly every removal dirties nearly every candidate.
    """
    adj = state.adj
    non_nbrs = state.non_nbrs
    moved = 0
    pending = _ALL_DIRTY if mask is None else mask
    masked = mask is not None
    progress = True
    while progress:
        progress = False
        verts = state.solution_bits | state.cand_bits
        budget = state.k - state.missing_in_solution
        min_degree = verts.bit_count() - 2 if root_degrees is not None else 0
        if masked:
            scan_list = bits_of(state.cand_bits & pending)
            if stats is not None:
                stats.dirty_drained += len(scan_list)
        else:
            scan_list = state.candidate_list()
        for v in scan_list:
            if root_degrees is not None and root_degrees[v] < min_degree:
                # Removing one of v's *neighbours* shrinks |V(g)| and can
                # re-qualify v, so v must stay in the pending mask.
                continue
            # "adjacent to all but at most one vertex of g": the non-neighbour
            # mask of v inside g (minus v itself) has at most one bit set.
            if non_nbrs[v] <= budget:
                others = (verts & ~adj[v]) ^ (1 << v)
                if not (others & (others - 1)):
                    state.add_to_solution(v)
                    if worklist is not None:
                        worklist.note_added(state, v)
                    moved += 1
                    progress = True
                    # Moving a vertex into S changes the non-neighbour
                    # counters of the remaining candidates: restart the scan.
                    break
            if masked:
                pending &= ~(1 << v)
    if stats is not None and moved:
        stats.rr2_additions += moved
    return moved


def bitset_rr3(
    state: BitsetSearchState,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
    worklist: Optional[ReductionWorklist] = None,
) -> int:
    """RR3 (degree-sequence-based): remove candidates that UB3 proves useless.

    A global sorted-prefix rule, so it has no per-vertex worklist; it only
    *feeds* the worklist with its removals.
    """
    needed = lower_bound - len(state.solution)
    cand = state.cand_bits
    if needed < 0 or not cand:
        return 0
    non_nbrs = state.non_nbrs
    # Pack (cost, vertex) into one int so the sort needs no key function.
    shift = len(state.adj).bit_length()
    id_mask = (1 << shift) - 1
    ordered = [(non_nbrs[v] << shift) | v for v in state.candidate_list()]
    ordered.sort()
    if needed >= len(ordered):
        return 0
    prefix_cost = sum(code >> shift for code in ordered[:needed])
    threshold = state.slack() - prefix_cost
    removed = 0
    adj = state.adj
    adj_and = _ALL_DIRTY
    adj_or = 0
    for code in ordered[needed:]:
        if (code >> shift) > threshold:
            v = code & id_mask
            state.remove_candidate(v)
            if worklist is not None:
                adj_v = adj[v]
                adj_and &= adj_v
                adj_or |= adj_v
            removed += 1
    if removed and worklist is not None:
        worklist.note_removed_batch(state, adj_and, adj_or)
    if stats is not None:
        stats.count_reduction("RR3", removed)
    return removed


def bitset_rr4(
    state: BitsetSearchState,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
    worklist: Optional[ReductionWorklist] = None,
    mask: Optional[int] = None,
    root_degrees: Optional[List[int]] = None,
) -> int:
    """RR4 (second-order): pairwise bound with the last-added solution vertex.

    Semantically identical to :func:`repro.core.reductions.apply_rr4`; the
    neighbourhood intersections become single ``&``/popcount operations.

    With ``mask`` only the masked candidates are examined — a sound
    restriction (RR4 only discards provably useless vertices), used by the
    trail engine on exclude transitions: removing ``b`` lowers the pairwise
    bound mostly for ``b``'s neighbours, so they are the profitable scan.

    ``root_degrees`` enables an exact integer-only shortcut: with
    ``cn <= min(nu_total, deg(v))`` and ``tail <= slack_v``, a candidate
    whose *relaxed* bound ``base + min(nu_total, root_degrees[v]) + slack_v``
    already fails the incumbent is removed without computing any
    intersection; the exact bound is only evaluated for the rest, so the
    removal set is unchanged.
    """
    u = state.last_added
    cand = state.cand_bits
    if u is None or not cand:
        return 0
    k = state.k
    adj = state.adj
    non_nbrs = state.non_nbrs
    missing = state.missing_in_solution
    u_nbrs_in_cand = adj[u] & cand
    nu_total = u_nbrs_in_cand.bit_count()
    total = cand.bit_count() - 1
    base = len(state.solution) + 1

    if mask is None:
        scan_list = state.candidate_list()
    else:
        scan_list = bits_of(cand & mask)
        if stats is not None:
            stats.dirty_drained += len(scan_list)
    # Set membership beats a per-candidate wide right-shift of the bitmask.
    u_nbr_set = set(bits_of(u_nbrs_in_cand))
    to_remove: List[int] = []
    for v in scan_list:
        missing_s_prime = missing + non_nbrs[v]
        if missing_s_prime > k:
            continue  # RR1 will remove it
        slack = k - missing_s_prime
        if root_degrees is not None:
            cn_cap = root_degrees[v]
            if nu_total < cn_cap:
                cn_cap = nu_total
            if base + cn_cap + slack <= lower_bound:
                to_remove.append(v)
                continue
        nu = nu_total - 1 if v in u_nbr_set else nu_total
        v_nbrs_in_cand = adj[v] & cand
        cn = (u_nbrs_in_cand & v_nbrs_in_cand).bit_count()
        dv = v_nbrs_in_cand.bit_count()
        xn = (nu - cn) + (dv - cn)
        cnon = total - cn - xn
        if slack > xn:
            tail = xn + min(cnon, (slack - xn) // 2)
            if tail > slack:
                tail = slack
        else:
            tail = slack
        if base + cn + tail <= lower_bound:
            to_remove.append(v)

    adj_and = _ALL_DIRTY
    adj_or = 0
    for v in to_remove:
        state.remove_candidate(v)
        if worklist is not None:
            adj_v = adj[v]
            adj_and &= adj_v
            adj_or |= adj_v
    if to_remove and worklist is not None:
        worklist.note_removed_batch(state, adj_and, adj_or)
    if stats is not None:
        stats.count_reduction("RR4", len(to_remove))
    return len(to_remove)


def bitset_rr5(
    state: BitsetSearchState,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
    mask: Optional[int] = None,
    worklist: Optional[ReductionWorklist] = None,
) -> Tuple[int, bool]:
    """RR5 (degree / core): remove candidates of degree < ``lb - k`` in the instance graph.

    Returns ``(removed, prune)``; ``prune`` is ``True`` when a *solution*
    vertex violates the degree requirement.

    With ``mask`` only the masked vertices (candidates *and* solution
    members) are examined; the removal cascade is drained internally — each
    removal dirties its surviving neighbours — so the unique core fixpoint
    is reached exactly as with a full sweep.
    """
    threshold = lower_bound - state.k
    if threshold <= 0:
        return 0, False
    adj = state.adj
    removed = 0

    if mask is None:
        progress = True
        while progress:
            progress = False
            verts = state.solution_bits | state.cand_bits
            for u in state.solution:
                if (adj[u] & verts).bit_count() < threshold:
                    if stats is not None:
                        stats.count_reduction("RR5", removed)
                    return removed, True
            for v in state.candidate_list():
                if (adj[v] & verts).bit_count() < threshold:
                    state.remove_candidate(v)
                    verts = state.solution_bits | state.cand_bits
                    removed += 1
                    progress = True
        if stats is not None:
            stats.count_reduction("RR5", removed)
        return removed, False

    pending = mask
    adj_and = _ALL_DIRTY
    while pending:
        verts = state.solution_bits | state.cand_bits
        sol_scan = bits_of(pending & state.solution_bits)
        cand_scan = bits_of(pending & state.cand_bits)
        if stats is not None:
            stats.dirty_drained += len(sol_scan) + len(cand_scan)
        pending = 0
        for u in sol_scan:
            if (adj[u] & verts).bit_count() < threshold:
                if stats is not None:
                    stats.count_reduction("RR5", removed)
                return removed, True
        for v in cand_scan:
            if (adj[v] & verts).bit_count() < threshold:
                state.remove_candidate(v)
                verts = state.solution_bits | state.cand_bits
                # The cascade re-examines the removed vertex's neighbours;
                # RR2 dirtiness is published once, after the drain.
                adj_v = adj[v]
                adj_and &= adj_v
                pending |= adj_v
                removed += 1
    if removed and worklist is not None:
        worklist.rr2 |= state.cand_bits & ~adj_and
    if stats is not None:
        stats.count_reduction("RR5", removed)
    return removed, False


def bitset_apply_reductions(
    state: BitsetSearchState,
    config: SolverConfig,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
    rr1_dirty: bool = True,
    rr5_dirty: bool = True,
    worklist: Optional[ReductionWorklist] = None,
    root_degrees: Optional[List[int]] = None,
) -> bool:
    """Exhaustively apply the enabled reduction rules (Line 4 of Algorithms 1/2).

    Reaches the same fixpoint as
    :func:`repro.core.reductions.apply_reductions` (RR1/RR2 always,
    RR3/RR4/RR5 when enabled, RR4 at most once per call) but re-runs each
    rule only when an event that can actually re-enable it has happened:

    * RR1 depends only on ``|\\bar{E}(S)|`` and the per-candidate
      ``|\\bar{N}_S(·)|`` counters, which change exclusively when RR2 moves a
      vertex into ``S`` — candidate *removals* never re-enable RR1;
    * RR2 additions keep the instance vertex set and all degrees unchanged,
      so they never re-enable RR5; every removal does;
    * RR3 removes only candidates outside its reserved cheapest prefix, so
      it is a self-fixpoint; RR2 additions and foreign removals re-enable it.

    The same invalidation logic extends across branch transitions, which is
    why the engine may pass ``rr1_dirty=False`` (the branch removed a
    candidate but left ``S`` and the incumbent untouched) or
    ``rr5_dirty=False`` (the branch moved one vertex into ``S``, changing no
    degree and no incumbent) for the *initial* state of the flags.

    In **worklist mode** (``worklist`` given, as the trail engine does) the
    rule-level flags become the per-vertex dirty masks of the
    :class:`ReductionWorklist`: a rule runs only while its queue is
    non-empty and scans only the queued vertices, draining the queue instead
    of sweeping all candidates.  ``rr1_dirty`` / ``rr5_dirty`` are ignored —
    the caller encodes the branch transition in the initial masks.  RR3 and
    RR4 are full-candidate sweeps by nature, so the worklist seeds them
    per-node instead (``worklist.rr3`` / ``worklist.rr4``): the trail engine
    runs them in full where ``S`` grew, the incumbent rose, or the staleness
    counter tripped, and restricts RR4 to the removed vertex's neighbours on
    other exclude transitions.  Restricting or skipping a reduction is
    always sound (rules only discard provably useless candidates); it
    trades a few extra nodes for much cheaper ones.

    This skips the full verification pass the dict/set backend pays at every
    node.  Returns ``True`` when RR5 proves the instance can be discarded.
    """
    use_rr5 = config.use_rr5
    use_rr3 = config.use_rr3
    rr4_pending = config.use_rr4

    if worklist is not None:
        wl = worklist
        rr3_dirty = use_rr3 and wl.rr3
        rr4_mask = wl.rr4 if rr4_pending else 0
        while wl.rr1 or wl.rr2 or (use_rr5 and wl.rr5) or rr3_dirty or rr4_mask:
            if wl.rr1:
                mask = wl.rr1
                wl.rr1 = 0
                if bitset_rr1(state, stats, mask=mask, worklist=wl):
                    rr3_dirty = use_rr3
            if wl.rr2:
                mask = wl.rr2
                wl.rr2 = 0
                if bitset_rr2(state, stats, mask=mask, worklist=wl, root_degrees=root_degrees):
                    rr3_dirty = use_rr3
            if use_rr5 and wl.rr5:
                mask = wl.rr5
                wl.rr5 = 0
                removed, prune = bitset_rr5(state, lower_bound, stats, mask=mask, worklist=wl)
                if prune:
                    return True
                if removed:
                    rr3_dirty = use_rr3
            if rr3_dirty:
                rr3_dirty = False
                bitset_rr3(state, lower_bound, stats, worklist=wl)
            if rr4_mask:
                mask = None if rr4_mask == _ALL_DIRTY else rr4_mask
                rr4_mask = 0
                if bitset_rr4(state, lower_bound, stats, worklist=wl, mask=mask,
                              root_degrees=root_degrees):
                    rr3_dirty = use_rr3
        return False

    rr2_dirty = True
    rr5_dirty = rr5_dirty and use_rr5
    rr3_dirty = use_rr3
    while rr1_dirty or rr2_dirty or rr5_dirty or rr3_dirty or rr4_pending:
        if rr1_dirty:
            rr1_dirty = False
            if bitset_rr1(state, stats):
                rr2_dirty = True
                rr5_dirty = use_rr5
                rr3_dirty = use_rr3
        if rr2_dirty:
            rr2_dirty = False
            if bitset_rr2(state, stats, root_degrees=root_degrees):
                rr1_dirty = True
                rr3_dirty = use_rr3
        if rr5_dirty:
            rr5_dirty = False
            removed, prune = bitset_rr5(state, lower_bound, stats)
            if prune:
                return True
            if removed:
                rr2_dirty = True
                rr3_dirty = use_rr3
        if rr3_dirty:
            rr3_dirty = False
            if bitset_rr3(state, lower_bound, stats):
                rr2_dirty = True
                rr5_dirty = use_rr5
        if rr4_pending:
            rr4_pending = False
            if bitset_rr4(state, lower_bound, stats, root_degrees=root_degrees):
                rr2_dirty = True
                rr5_dirty = use_rr5
                rr3_dirty = use_rr3
    return False


# --------------------------------------------------------------------------- #
# Upper bounds
# --------------------------------------------------------------------------- #
def bitset_color_classes(
    state: BitsetSearchState,
    cand_list: Optional[List[int]] = None,
    degrees: Optional[List[int]] = None,
) -> List[int]:
    """Greedily colour the candidates into independent sets, returned as bitmasks.

    When ``degrees`` is given, candidates are coloured in non-increasing
    instance-degree order (ties towards smaller ids) — the same order as the
    set backend, which keeps UB1 equally tight.  Without it the coloring runs
    in ``cand_list`` order (default: ascending bit order), which is still a
    valid independent-set partition, just potentially looser.
    """
    adj = state.adj
    if cand_list is None:
        cand_list = bits_of(state.cand_bits)
    if degrees is not None:
        # Pack (n - degree, vertex) into one int: a plain ascending sort
        # yields non-increasing degree with ties towards smaller ids.
        n = len(adj)
        shift = n.bit_length()
        id_mask = (1 << shift) - 1
        order = [((n - degrees[v]) << shift) | v for v in cand_list]
        order.sort()
        cand_list = [code & id_mask for code in order]

    class_masks: List[int] = []
    for v in cand_list:
        adjacency = adj[v]
        for i, cmask in enumerate(class_masks):
            if not (cmask & adjacency):
                class_masks[i] = cmask | (1 << v)
                break
        else:
            class_masks.append(1 << v)
    return class_masks


def bitset_ub1_from_classes(state: BitsetSearchState, class_masks: Sequence[int]) -> int:
    """Evaluate UB1 from pre-computed colour-class bitmasks.

    ``class_masks`` may be stale — each class is intersected with the
    current candidate set, so any partition whose union covers the
    candidates yields a valid bound (vertex deletions only shrink
    independent sets).  This is what lets the trail engine *repair* an
    inherited coloring instead of rebuilding it.

    Every selectable weight lies in ``0..budget``, so a counting sort
    replaces the global sort; within a class the weight ``cost + j`` is
    strictly increasing, allowing the early break.
    """
    budget = state.slack()
    if budget < 0:
        return len(state.solution)
    non_nbrs = state.non_nbrs
    cand = state.cand_bits
    counts = [0] * (budget + 1)
    for cmask in class_masks:
        members = cmask & cand
        if not members:
            continue
        costs = sorted(non_nbrs[v] for v in bits_of(members))
        for j, cost in enumerate(costs):
            w = cost + j
            if w > budget:
                break
            counts[w] += 1
    count = counts[0]
    for w in range(1, budget + 1):
        avail = counts[w]
        if not avail:
            continue
        affordable = budget // w
        if affordable < avail:
            count += affordable
            break
        budget -= avail * w
        count += avail
    return len(state.solution) + count


def bitset_ub1_improved_coloring(
    state: BitsetSearchState,
    cand_list: Optional[List[int]] = None,
    degrees: Optional[List[int]] = None,
) -> int:
    """The paper's improved coloring-based upper bound **UB1** on bitmasks.

    Colour classes are bitmasks; the "is this class independent from v"
    test of the greedy coloring is a single ``&`` against ``adj[v]``.
    Composition of :func:`bitset_color_classes` and
    :func:`bitset_ub1_from_classes` (the trail engine calls them separately
    so it can cache and repair the classes across branches).
    """
    if state.slack() < 0:
        return len(state.solution)
    return bitset_ub1_from_classes(state, bitset_color_classes(state, cand_list, degrees))


def bitset_ub2_min_degree(state: BitsetSearchState) -> int:
    """The min-degree bound **UB2**: ``min_{u ∈ S} d_g(u) + 1 + k``.

    Computes the |S| solution-vertex degrees itself: the engine's shared
    ``degrees`` array covers candidates only, so reusing it here would be
    incorrect (and UB2 runs before that scan anyway).
    """
    if not state.solution:
        return state.graph_size
    adj = state.adj
    verts = state.solution_bits | state.cand_bits
    return min((adj[u] & verts).bit_count() for u in state.solution) + 1 + state.k


def bitset_ub3_degree_sequence(
    state: BitsetSearchState, cand_list: Optional[List[int]] = None
) -> int:
    """The degree-sequence bound **UB3** of KDBB.

    Equivalent to the sort-based set implementation, but because every
    selectable cost lies in ``0..slack`` the greedy prefix is computed by
    counting sort in O(|candidates| + k).
    """
    budget = state.slack()
    if budget < 0:
        return len(state.solution)
    non_nbrs = state.non_nbrs
    if cand_list is None:
        cand_list = bits_of(state.cand_bits)
    counts = [0] * (budget + 1)
    for v in cand_list:
        c = non_nbrs[v]
        if c <= budget:
            counts[c] += 1
    count = counts[0]
    for c in range(1, budget + 1):
        avail = counts[c]
        if not avail:
            continue
        affordable = budget // c
        if affordable < avail:
            count += affordable
            break
        budget -= avail * c
        count += avail
    return len(state.solution) + count


# --------------------------------------------------------------------------- #
# Branching rule BR
# --------------------------------------------------------------------------- #
def bitset_select_branching_vertex(
    state: BitsetSearchState,
    degrees: Optional[List[int]] = None,
    cand_list: Optional[List[int]] = None,
) -> Optional[int]:
    """Branching rule BR on bitmasks (same preference order as the set backend).

    Prefers a candidate with at least one non-neighbour in ``S`` — fewest
    non-neighbours first, ties towards highest degree — and falls back to a
    maximum-degree candidate when every candidate is fully adjacent to ``S``.
    """
    if cand_list is None:
        cand_list = bits_of(state.cand_bits)
    if not cand_list:
        return None
    adj = state.adj
    verts = state.solution_bits | state.cand_bits
    non_nbrs = state.non_nbrs

    best_vertex = -1
    best_count = -1
    best_degree = -1
    fallback_vertex = -1
    fallback_degree = -1
    for v in cand_list:
        count = non_nbrs[v]
        if count == 0:
            if best_vertex < 0:
                degree = degrees[v] if degrees is not None else (adj[v] & verts).bit_count()
                if degree > fallback_degree:
                    fallback_degree = degree
                    fallback_vertex = v
            continue
        if best_count == -1 or count <= best_count:
            degree = degrees[v] if degrees is not None else (adj[v] & verts).bit_count()
            if count < best_count or best_count == -1 or degree > best_degree:
                best_count = count
                best_degree = degree
                best_vertex = v
    if best_vertex >= 0:
        return best_vertex
    return fallback_vertex


# --------------------------------------------------------------------------- #
# Branch-and-bound engines
# --------------------------------------------------------------------------- #
#: Trail-engine stack frame tags.
_F_ENTER = 0    # process the node the state is currently positioned at
_F_EXCLUDE = 1  # rewind to the node's post-reduction mark, remove b, then process
_F_UNWIND = 2   # node fully explored: rewind to its entry mark


class BitsetEngine:
    """Branch-and-bound over :class:`BitsetSearchState` with a shared incumbent.

    ``config.engine`` selects the driver: ``"trail"`` runs the undo-stack
    engine (one mutable state, worklist reductions, repairable coloring —
    see the module docstring), ``"copy"`` the original copy-per-child
    engine.  Both visit nodes in the same recursive DFS order (node, include
    subtree, exclude subtree) and are exact; with
    ``config.recolor_period == 1`` they are node-for-node identical.

    Parameters
    ----------
    config:
        Feature flags (budgets are enforced via ``check_budget``, not here).
    stats:
        Counters updated in place (shared with the owning solver).
    check_budget:
        Zero-argument callable invoked once per node; raises
        :class:`~repro.exceptions.BudgetExceededError` to interrupt.
    incumbent:
        Mutable list of vertex ids (in the *caller's* id space) holding the
        best solution known so far.  Grown in place on every improvement, so
        several engine runs (e.g. the decomposition's subproblems) share one
        lower bound.
    to_global:
        Optional mapping from this engine's local vertex ids to the caller's
        id space; identity when ``None``.

    Attributes
    ----------
    trace:
        Optional list; when set (by tests) the engine appends
        ``(solution_bits, cand_bits)`` at every node entry, capturing the
        exact DFS sequence for lockstep comparison.
    """

    def __init__(
        self,
        config: SolverConfig,
        stats: SearchStats,
        check_budget: Callable[[], None],
        incumbent: List[int],
        to_global: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config
        self.stats = stats
        self.check_budget = check_budget
        self.incumbent = incumbent
        self.to_global = to_global
        self.trace: Optional[List[Tuple[int, int]]] = None

    def run(
        self,
        adj: Sequence[int],
        vertices_bits: int,
        k: int,
        forced: Optional[int] = None,
    ) -> None:
        """Solve one instance, improving ``self.incumbent`` in place.

        Parameters
        ----------
        adj:
            Packed adjacency rows over local vertex ids.
        vertices_bits:
            Bitmask of the instance's vertices.
        k:
            Defectiveness parameter.
        forced:
            Optional local vertex id committed to ``S`` before branching
            (the decomposition forces each subproblem's anchor vertex).

        Notes
        -----
        Both engines are driven by an explicit stack rather than recursion:
        instances are popped and processed in exactly the recursive DFS
        order (node, then its include subtree, then its exclude subtree),
        so arbitrarily deep branches need no ``sys.setrecursionlimit``
        fiddling — which matters inside :mod:`multiprocessing` workers —
        and the per-node budget poll happens at the single loop head.
        """
        state = BitsetSearchState.initial(adj, k, vertices_bits)
        if forced is not None:
            state.add_to_solution(forced)
        # Degrees in the root instance, computed once per run: degrees only
        # shrink down the tree, so these upper bounds power the exact
        # integer-only pre-filters of RR2 and RR4 at every node.
        root_degrees = [(row & vertices_bits).bit_count() for row in adj]
        if self.config.engine == "trail":
            self._run_trail(state, root_degrees)
        else:
            self._run_copy(state, root_degrees)

    # -------------------------------------------------------------- #
    def _run_trail(self, state: BitsetSearchState, root_degrees: List[int]) -> None:
        """The undo-stack engine: one mutable state, cost proportional to change.

        Stack frames carry the *plan* of the DFS, not state snapshots:
        ``ENTER`` processes the node the state is currently positioned at,
        ``EXCLUDE`` rewinds to the owning node's post-reduction mark and
        performs the exclude branch, ``UNWIND`` rewinds to the owning
        node's entry mark once both subtrees are explored.  Every frame's
        rewind target was recorded while expanding the owning node, so an
        interrupt (budget) can simply abandon the state.
        """
        stats = self.stats
        state.begin_trail()
        # Removals vastly outnumber nodes in the trail engine (each is also
        # rewound and redone along sibling branches), so per-removal edge
        # maintenance loses to an on-demand, early-exit leaf test.
        state.defer_edge_tracking()
        try:
            self._trail_loop(state, root_degrees)
        finally:
            # Budget interrupts abandon the state mid-rewind; the counters
            # must still reach the stats (the solve reports optimal=False).
            stats.trail_pushes += state.trail_pushes
            stats.trail_pops += state.trail_pops

    def _trail_loop(self, state: BitsetSearchState, root_degrees: List[int]) -> None:
        config = self.config
        stats = self.stats
        check_budget = self.check_budget
        incumbent = self.incumbent
        trace = self.trace
        use_rr5 = config.use_rr5
        use_ub1 = config.use_ub1
        use_ub2 = config.use_ub2
        use_ub3 = config.use_ub3
        recolor_period = config.recolor_period

        # ENTER:   (tag, depth, rr1_mask, rr2_mask, rr5_mask, rr5_lb, classes, stale)
        # EXCLUDE: (tag, depth, branch_vertex, mark_red, rr5_lb, classes, stale)
        # UNWIND:  (tag, mark)
        # The root starts at the staleness boundary so its first node is a
        # "heavy" node: full recolor plus the RR3/RR4 sweeps.
        stack: List[tuple] = [
            (_F_ENTER, 1, _ALL_DIRTY, _ALL_DIRTY, _ALL_DIRTY, 0, None, recolor_period)
        ]
        while stack:
            frame = stack.pop()
            tag = frame[0]
            if tag == _F_UNWIND:
                state.rewind_to(frame[1])
                continue
            if tag == _F_EXCLUDE:
                _, depth, b, mark_red, rr5_lb, classes, stale = frame
                state.rewind_to(mark_red)
                state.remove_candidate(b)
                rr1_mask = 0
                rr2_mask = state.cand_bits & ~state.adj[b]
                rr5_mask = state.adj[b]
                fresh_s = False
            else:
                _, depth, rr1_mask, rr2_mask, rr5_mask, rr5_lb, classes, stale = frame
                fresh_s = True

            check_budget()
            stats.nodes += 1
            if depth > stats.max_depth:
                stats.max_depth = depth
            if trace is not None:
                trace.append((state.solution_bits, state.cand_bits))

            mark0 = state.trail_mark()
            lb_used = len(incumbent)
            lb_rose = lb_used > rr5_lb
            if use_rr5 and lb_rose:
                # The (lb - k)-core threshold rose since the inherited RR5
                # fixpoint: every vertex may newly violate it.
                rr5_mask = _ALL_DIRTY
            # The global RR3/RR4 sweeps fire almost exclusively where S grew
            # (a fresh last_added gives RR4 new information; RR3's reserved
            # prefix shifts when |S| or the incumbent does).  On other
            # exclude transitions RR3 is deferred to the next staleness
            # boundary and RR4 scans only the removed vertex's neighbours —
            # the candidates whose pairwise bound the removal lowered.
            recolor = stale >= recolor_period
            heavy = fresh_s or recolor or lb_rose
            worklist = ReductionWorklist(
                rr1_mask, rr2_mask, rr5_mask,
                rr3=heavy, rr4=_ALL_DIRTY if heavy else rr5_mask,
            )
            if bitset_apply_reductions(
                state, config, lower_bound=lb_used, stats=stats,
                worklist=worklist, root_degrees=root_degrees,
            ):
                state.rewind_to(mark0)
                continue

            cand_list = state.candidate_list()
            if state.is_defective_clique(cand_list):
                stats.leaves += 1
                self._record(state.graph_vertices())
                state.rewind_to(mark0)
                continue

            incumbent_len = len(incumbent)
            if use_ub2 and bitset_ub2_min_degree(state) <= incumbent_len:
                stats.prunes_by_bound += 1
                state.rewind_to(mark0)
                continue
            if use_ub3 and bitset_ub3_degree_sequence(state, cand_list) <= incumbent_len:
                stats.prunes_by_bound += 1
                state.rewind_to(mark0)
                continue

            degrees = None
            if use_ub1:
                if not recolor and classes is not None:
                    # Repair: deletions only shrink classes, so intersecting
                    # with the surviving candidates keeps a valid partition.
                    cand = state.cand_bits
                    classes = [m for m in (cmask & cand for cmask in classes) if m]
                    stats.recolor_repair += 1
                    ub1 = bitset_ub1_from_classes(state, classes)
                    if ub1 <= incumbent_len:
                        stats.prunes_by_bound += 1
                        state.rewind_to(mark0)
                        continue
                    # A fresh coloring is only worth paying for when it could
                    # change the outcome: the repaired bound landed close
                    # enough to the incumbent that a tighter partition might
                    # prune after all.  Far above the incumbent, staleness is
                    # harmless and the repair is the whole cost.
                    recolor = ub1 <= incumbent_len + _RECOLOR_MARGIN
                if recolor or classes is None:
                    recolor = True
                    degrees = self._degree_scan(state, cand_list)
                    classes = bitset_color_classes(state, cand_list, degrees)
                    stats.recolor_full += 1
                    if bitset_ub1_from_classes(state, classes) <= incumbent_len:
                        stats.prunes_by_bound += 1
                        state.rewind_to(mark0)
                        continue

            # The partial solution S itself is a valid k-defective clique.
            self._record(state.solution)

            # At repair nodes BR computes the degrees it needs lazily (only
            # the tie-break candidates), skipping the full scan.
            branching_vertex = bitset_select_branching_vertex(state, degrees, cand_list)
            if branching_vertex is None:
                state.rewind_to(mark0)
                continue

            # Include branch first (recursive DFS order): perform the add now
            # and queue the exclude branch + the final unwind beneath it.
            child_stale = 1 if recolor else stale + 1
            mark_red = state.trail_mark()
            stack.append((_F_UNWIND, mark0))
            stack.append(
                (_F_EXCLUDE, depth + 1, branching_vertex, mark_red,
                 lb_used, classes, child_stale)
            )
            state.add_to_solution(branching_vertex)
            if state.non_nbrs[branching_vertex]:
                rr1_child = _ALL_DIRTY  # the missing-edge budget shrank
            else:
                rr1_child = state.cand_bits & ~state.adj[branching_vertex]
            stack.append(
                (_F_ENTER, depth + 1, rr1_child, 0, 0,
                 lb_used, classes, child_stale)
            )

    @staticmethod
    def _degree_scan(state: BitsetSearchState, cand_list: List[int]) -> List[int]:
        """Instance-graph degrees of the candidates (shared by UB1's coloring order and BR)."""
        adj_rows = state.adj
        verts = state.solution_bits | state.cand_bits
        degrees = [0] * len(adj_rows)
        for v in cand_list:
            degrees[v] = (adj_rows[v] & verts).bit_count()
        return degrees

    # -------------------------------------------------------------- #
    def _run_copy(self, state: BitsetSearchState, root_degrees: List[int]) -> None:
        """The original copy-per-child engine (differential baseline)."""
        config = self.config
        stats = self.stats
        check_budget = self.check_budget
        trace = self.trace
        # Stack frames: (state, depth, rr1_dirty, rr5_dirty).  Pushing the
        # exclude branch below the include branch reproduces the recursive
        # visit order, so both engines explore — and prune — identically.
        stack: List[Tuple[BitsetSearchState, int, bool, bool]] = [(state, 1, True, True)]
        while stack:
            state, depth, rr1_dirty, rr5_dirty = stack.pop()
            check_budget()
            stats.nodes += 1
            if depth > stats.max_depth:
                stats.max_depth = depth
            if trace is not None:
                trace.append((state.solution_bits, state.cand_bits))

            # Line 4: reduction rules.  The dirty flags encode how this state
            # was reached (see bitset_apply_reductions): an exclude branch
            # cannot re-enable RR1, an include branch with an unchanged
            # incumbent cannot re-enable RR5.
            lb_used = len(self.incumbent)
            if bitset_apply_reductions(
                state, config, lower_bound=lb_used, stats=stats,
                rr1_dirty=rr1_dirty, rr5_dirty=rr5_dirty, root_degrees=root_degrees,
            ):
                continue

            # Line 5: if the whole instance graph is a k-defective clique, record it.
            if state.is_defective_clique():
                stats.leaves += 1
                self._record(state.graph_vertices())
                continue

            # Upper-bound pruning, cheapest bound first (no-op for kDC-t).
            # UB2 needs no candidate scan at all; UB3 and UB1 reuse one
            # materialised candidate list; the degree scan is deferred past
            # all three bounds.
            incumbent = len(self.incumbent)
            if config.use_ub2 and bitset_ub2_min_degree(state) <= incumbent:
                stats.prunes_by_bound += 1
                continue
            cand_list = state.candidate_list()
            if config.use_ub3 and bitset_ub3_degree_sequence(state, cand_list) <= incumbent:
                stats.prunes_by_bound += 1
                continue

            # One shared degree scan for UB1's coloring order and the
            # branching rule (the state is not mutated in between).
            # Recomputing the order from *current* instance degrees keeps UB1
            # as tight as the set backend's; a static order was measured to
            # cost far more nodes than the per-node sort saves.
            degrees = self._degree_scan(state, cand_list)

            if config.use_ub1 and bitset_ub1_improved_coloring(state, cand_list, degrees) <= incumbent:
                stats.prunes_by_bound += 1
                continue

            # The partial solution S itself is a valid k-defective clique.
            self._record(state.solution)

            # Line 6: branching vertex via rule BR.
            branching_vertex = bitset_select_branching_vertex(state, degrees, cand_list)
            if branching_vertex is None:
                continue

            # Line 7/8: the include branch copies the state, the exclude
            # branch mutates it in place (it is not needed otherwise).  The
            # include branch changes no degree, so RR5 stays at its fixpoint
            # unless the incumbent moved during this node; the exclude branch
            # leaves S untouched, so RR1 (incumbent-independent) stays clean.
            left = state.copy()
            left.add_to_solution(branching_vertex)
            state.remove_candidate(branching_vertex)
            stack.append((state, depth + 1, False, True))
            stack.append((left, depth + 1, True, len(self.incumbent) != lb_used))

    # -------------------------------------------------------------- #
    def _record(self, vertices: List[int]) -> None:
        if len(vertices) > len(self.incumbent):
            if self.to_global is not None:
                vertices = [self.to_global[v] for v in vertices]
            self.incumbent[:] = vertices
            self.stats.improvements += 1
