"""Degeneracy decomposition driver for the bitset backend.

Instead of branching on the whole (reduced) input graph, large sparse graphs
are split into one small *ego subproblem* per vertex, following the way the
paper's implementation scales to million-edge SNAP/DIMACS10 inputs:

1. compute a degeneracy ordering ``v_1, ..., v_n`` (reusing
   :func:`repro.graphs.degeneracy.degeneracy_ordering`);
2. for each vertex ``v``, solve for the best solution that contains ``v`` as
   its *lowest-ranked* vertex.  Such a solution lives inside ``{v} ∪ N⁺(v) ∪
   N(N⁺(v))`` restricted to higher-ranked vertices, so the subproblem width
   is bounded by roughly ``degeneracy + k`` after filtering;
3. thread one shared incumbent through every subproblem: each engine run
   starts from the current global lower bound, so RR5/UB pruning kills most
   subproblems before any branching happens.

Safety of the candidate restriction rests on the diameter-2 property of
k-defective cliques [Chen et al. 2021]: any k-defective clique ``S`` with
``|S| >= k + 2`` is connected with diameter at most 2, hence every
``u ∈ S \\ {v}`` non-adjacent to ``v`` has a common neighbour with ``v``
*inside* ``S`` — and that witness is a higher-ranked neighbour of ``v``.
Moreover ``u`` and ``v`` each waste at most ``k - 1`` further missing edges
inside ``S``, so ``u`` must have at least ``|S| - 2k`` common neighbours with
``v``; both facts prune the two-hop candidate set.

The driver therefore only searches for solutions of size ``>= lb + 1`` where
``lb >= k + 1`` (so ``lb + 1 >= k + 2``).  Callers must fall back to the
whole-graph solve when the incumbent is smaller than ``k + 1`` —
``repro.core.solver`` does exactly that.

The subproblems are independent once the incumbent bound is shared, which is
what makes them embarrassingly parallel: :mod:`repro.core.parallel` reuses
:func:`build_ego_subproblem` to run the same decomposition across a
``multiprocessing`` worker pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .checkpoint import SolveCheckpoint

from ..graphs.degeneracy import degeneracy_ordering
from ..graphs.graph import Graph
from .config import SolverConfig
from .fastpath import BitsetEngine
from .result import SearchStats

__all__ = ["build_ego_subproblem", "solve_anchor", "solve_decomposed"]


def solve_anchor(
    neighbors: Callable[[int], Sequence[int]],
    position: Mapping[int, int],
    v: int,
    k: int,
    config: SolverConfig,
    stats: SearchStats,
    check_budget: Callable[[], None],
    incumbent: List[int],
) -> None:
    """Build and exactly solve the ego subproblem anchored at ``v``.

    The shared per-anchor body of the sequential driver and the parallel
    driver's lost-worker recovery loop: prunes via
    :func:`build_ego_subproblem`'s size cap (counted in
    ``stats.subproblems_pruned``) or runs one engine search (counted in
    ``stats.subproblems``), growing ``incumbent`` in place.  Each subproblem
    search runs the engine selected by ``config.engine`` — the trail
    (undo-stack) engine by default — so worker processes and the sequential
    driver branch with the same per-node cost profile.
    """
    sub = build_ego_subproblem(neighbors, position, v, len(incumbent), k)
    if sub is None:
        stats.subproblems_pruned += 1
        return
    stats.subproblems += 1
    local_vertices, adj_bits = sub
    engine = BitsetEngine(config, stats, check_budget, incumbent, to_global=local_vertices)
    engine.run(adj_bits, (1 << len(local_vertices)) - 1, k, forced=0)


def build_ego_subproblem(
    neighbors: Callable[[int], Sequence[int]],
    position: Mapping[int, int],
    v: int,
    lower_bound: int,
    k: int,
) -> Optional[Tuple[List[int], List[int]]]:
    """Build the ego subproblem anchored at ``v``, or ``None`` if it cannot win.

    Parameters
    ----------
    neighbors:
        Adjacency accessor over the instance graph (``neighbors(u)`` yields
        the neighbours of ``u``); vertices are integer ids with an entry in
        ``position``.
    position:
        Vertex -> rank in the degeneracy ordering.
    v:
        Anchor vertex; the subproblem searches solutions containing ``v`` as
        their lowest-ranked vertex.
    lower_bound:
        Current incumbent size (``>= k + 1``, see module docstring); only
        solutions of size ``>= lower_bound + 1`` are searched for.
    k:
        Defectiveness parameter.

    Returns
    -------
    ``(local_vertices, adj_bits)`` where ``local_vertices[0] == v`` maps
    local ids back to instance ids and ``adj_bits`` is the packed local
    adjacency — or ``None`` when the incumbent size cap already proves no
    solution anchored at ``v`` can beat ``lower_bound``.
    """
    pos_v = position[v]
    higher = [u for u in neighbors(v) if position[u] > pos_v]
    # A solution with v lowest-ranked has at most 1 + |N⁺(v)| + k vertices
    # (each of the <= k non-neighbours of v costs one of the k missing
    # edges), so small ego nets cannot beat the incumbent.
    if 1 + len(higher) + k <= lower_bound:
        return None

    target = lower_bound + 1
    higher_set = set(higher)
    # Two-hop candidates: higher-ranked non-neighbours of v reachable
    # through N⁺(v), filtered by the common-neighbour lower bound
    # |N(u) ∩ N(v) ∩ S| >= target - 2k (diameter-2 argument above).
    cn_count: Dict[int, int] = {}
    for w in higher:
        for u in neighbors(w):
            if u != v and u not in higher_set and position[u] > pos_v:
                cn_count[u] = cn_count.get(u, 0) + 1
    cn_threshold = max(1, target - 2 * k)
    two_hop = [u for u, c in cn_count.items() if c >= cn_threshold]

    local_vertices = [v] + higher + two_hop
    local_index = {u: i for i, u in enumerate(local_vertices)}
    width = len(local_vertices)
    adj_bits = [0] * width
    for u, i in local_index.items():
        row = 0
        for w in neighbors(u):
            j = local_index.get(w)
            if j is not None:
                row |= 1 << j
        adj_bits[i] = row
    return local_vertices, adj_bits


def solve_decomposed(
    working: Optional[Graph],
    k: int,
    config: SolverConfig,
    stats: SearchStats,
    check_budget: Callable[[], None],
    incumbent: List[int],
    adj: Optional[Mapping[int, Sequence[int]]] = None,
    decomposition: Optional[Tuple[Sequence[int], Mapping[int, int]]] = None,
    checkpoint: Optional["SolveCheckpoint"] = None,
) -> None:
    """Solve ``working`` by per-vertex ego subproblems, improving ``incumbent`` in place.

    Parameters
    ----------
    working:
        The (preprocessed) instance graph with integer vertex ids.  Not
        modified.  May be ``None`` when both ``adj`` and ``decomposition``
        are supplied (the prepared-instance path).
    k:
        Defectiveness parameter.
    config:
        Feature flags forwarded to the bitset engine.
    stats:
        Counters updated in place.
    check_budget:
        Raises :class:`~repro.exceptions.BudgetExceededError` to interrupt;
        called at least once per subproblem (and once per search node by the
        engine).
    incumbent:
        Best solution known so far, as a list of ``working`` vertex ids with
        ``len(incumbent) >= k + 1`` (see module docstring).  Grown in place.
    adj:
        Optional precomputed adjacency mapping ``vertex -> neighbour
        sequence`` used instead of ``working.neighbors`` — a
        :class:`~repro.core.prepared.PreparedInstance` supplies its frozen
        ``working_adj`` here so repeated solves skip the rebuild.
    decomposition:
        Optional precomputed ``(ordering, position)`` degeneracy
        decomposition of the instance; computed from ``working`` when
        absent.
    checkpoint:
        Optional :class:`~repro.core.checkpoint.SolveCheckpoint`.  Anchors
        it journaled as completed by an earlier interrupted run of this
        same solve are skipped (counted in ``stats.subproblems_restored``)
        after restoring its re-verified incumbent, and every anchor
        completed here is journaled in turn.  Because each anchor is
        recorded only after its search returns and the loop is
        deterministic from a given incumbent, an interrupted-then-resumed
        sequential solve ends bit-identical to an uninterrupted one.
    """
    if len(incumbent) < k + 1:
        raise ValueError(
            "solve_decomposed requires an incumbent of size >= k + 1; "
            "fall back to the whole-graph bitset solve instead"
        )
    stats.workers = 1
    if decomposition is None:
        result = degeneracy_ordering(working)
        ordering, position = result.ordering, result.position
    else:
        ordering, position = decomposition
    neighbors = adj.__getitem__ if adj is not None else working.neighbors

    completed: Sequence[int] = ()
    if checkpoint is not None:
        restored = checkpoint.verified_incumbent(neighbors, k)
        if len(restored) > len(incumbent):
            incumbent[:] = restored
        completed = frozenset(checkpoint.completed)

    # Process anchors in reverse peeling order: the densest part of the graph
    # (where the maximum solution almost always lives) is searched first, so
    # the incumbent tightens early and the cheap size cap in
    # build_ego_subproblem skips most of the remaining, sparser ego nets
    # without building them.
    for v in reversed(ordering):
        if v in completed:
            stats.subproblems_restored += 1
            continue
        check_budget()
        solve_anchor(neighbors, position, v, k, config, stats, check_budget, incumbent)
        if checkpoint is not None:
            checkpoint.record(v, incumbent)
