"""Branch-and-bound search state: one instance ``(g, S)`` of the paper.

An instance consists of the current graph ``g`` (represented implicitly as
the union of the partial solution ``S`` and the candidate set ``V(g) \\ S``)
and the partial solution ``S`` itself, which is always a k-defective clique.

The state keeps exactly the bookkeeping the branching rule, reduction rules
and upper bounds need in O(1)/O(deg) time:

* ``missing_in_solution`` — the number of non-edges inside ``S``
  (:math:`|\\bar{E}(S)|`);
* ``non_nbrs_in_solution[v]`` — for every candidate ``v``, the number of its
  non-neighbours inside ``S`` (:math:`|\\bar{N}_S(v)|`);
* ``degree_in_graph[v]`` — for every vertex of ``g``, its degree inside ``g``
  (:math:`d_g(v)`).

Child instances are produced by copying the state (O(|V(g)|)) and then either
moving the branching vertex into ``S`` or deleting it from the candidate set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

__all__ = ["SearchState"]

AdjacencyList = Sequence[Set[int]]


class SearchState:
    """Mutable state of a single branch-and-bound instance over an integer-labelled graph."""

    __slots__ = (
        "adj",
        "k",
        "solution",
        "solution_set",
        "candidates",
        "missing_in_solution",
        "non_nbrs_in_solution",
        "degree_in_graph",
        "last_added",
    )

    def __init__(
        self,
        adj: AdjacencyList,
        k: int,
        solution: List[int],
        solution_set: Set[int],
        candidates: Set[int],
        missing_in_solution: int,
        non_nbrs_in_solution: Dict[int, int],
        degree_in_graph: Dict[int, int],
        last_added: Optional[int],
    ) -> None:
        self.adj = adj
        self.k = k
        self.solution = solution
        self.solution_set = solution_set
        self.candidates = candidates
        self.missing_in_solution = missing_in_solution
        self.non_nbrs_in_solution = non_nbrs_in_solution
        self.degree_in_graph = degree_in_graph
        self.last_added = last_added

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initial(cls, adj: AdjacencyList, k: int, vertices: Optional[Set[int]] = None) -> "SearchState":
        """Build the root instance ``(G, ∅)``.

        Parameters
        ----------
        adj:
            Adjacency sets indexed by integer vertex id.  The structure is
            shared (never mutated) by all states derived from this one.
        k:
            Defectiveness parameter.
        vertices:
            Optional subset of vertex ids forming the instance graph; defaults
            to every index of ``adj`` (isolated vertices included).
        """
        if vertices is None:
            vertices = set(range(len(adj)))
        else:
            vertices = set(vertices)
        degree = {v: len(adj[v] & vertices) for v in vertices}
        return cls(
            adj=adj,
            k=k,
            solution=[],
            solution_set=set(),
            candidates=set(vertices),
            missing_in_solution=0,
            non_nbrs_in_solution={v: 0 for v in vertices},
            degree_in_graph=degree,
            last_added=None,
        )

    def copy(self) -> "SearchState":
        """Return an independent copy sharing only the immutable adjacency structure."""
        return SearchState(
            adj=self.adj,
            k=self.k,
            solution=list(self.solution),
            solution_set=set(self.solution_set),
            candidates=set(self.candidates),
            missing_in_solution=self.missing_in_solution,
            non_nbrs_in_solution=dict(self.non_nbrs_in_solution),
            degree_in_graph=dict(self.degree_in_graph),
            last_added=self.last_added,
        )

    # ------------------------------------------------------------------ #
    # Size / structure queries
    # ------------------------------------------------------------------ #
    @property
    def graph_size(self) -> int:
        """Number of vertices of the instance graph ``g`` (i.e. ``|S| + |V(g) \\ S|``)."""
        return len(self.solution) + len(self.candidates)

    @property
    def instance_size(self) -> int:
        """The measure ``|I| = |V(g) \\ S|`` used by the complexity analysis."""
        return len(self.candidates)

    def graph_vertices(self) -> List[int]:
        """Return all vertices of the instance graph (solution first, then candidates)."""
        return self.solution + list(self.candidates)

    def total_edges(self) -> int:
        """Number of edges of the instance graph (derived from the degree bookkeeping)."""
        return sum(self.degree_in_graph.values()) // 2

    def total_missing(self) -> int:
        """Number of non-edges of the whole instance graph ``g``."""
        n = self.graph_size
        return n * (n - 1) // 2 - self.total_edges()

    def is_defective_clique(self) -> bool:
        """Return ``True`` if the entire instance graph is a k-defective clique (leaf test, Line 5 of Algorithm 1)."""
        return self.total_missing() <= self.k

    def missing_if_added(self, v: int) -> int:
        """Return ``|\\bar{E}(S ∪ v)|`` for a candidate ``v`` in O(1)."""
        return self.missing_in_solution + self.non_nbrs_in_solution[v]

    def slack(self) -> int:
        """Return ``k - |\\bar{E}(S)|``: how many more missing edges the solution may absorb."""
        return self.k - self.missing_in_solution

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def add_to_solution(self, v: int) -> None:
        """Move candidate ``v`` into the partial solution ``S``.

        Updates the missing-edge count of ``S`` and the per-candidate
        non-neighbour counters in O(|candidates|) time.
        """
        self.candidates.discard(v)
        self.missing_in_solution += self.non_nbrs_in_solution.pop(v)
        self.solution.append(v)
        self.solution_set.add(v)
        adj_v = self.adj[v]
        non_nbrs = self.non_nbrs_in_solution
        for u in self.candidates:
            if u not in adj_v:
                non_nbrs[u] += 1
        self.last_added = v

    def remove_candidate(self, v: int) -> None:
        """Delete candidate ``v`` from the instance graph ``g``.

        Updates the degrees of its surviving neighbours in O(deg(v)) time.
        """
        self.candidates.discard(v)
        self.non_nbrs_in_solution.pop(v, None)
        degree = self.degree_in_graph
        for u in self.adj[v]:
            if u in degree and (u in self.candidates or u in self.solution_set):
                degree[u] -= 1
        del degree[v]

    # ------------------------------------------------------------------ #
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Recompute every cached quantity from scratch and assert it matches.

        Raises ``AssertionError`` on any mismatch.  Intended exclusively for
        tests; never called on the hot path.
        """
        vertices = set(self.solution) | self.candidates
        assert self.solution_set == set(self.solution)
        assert not (self.solution_set & self.candidates), "solution and candidates overlap"
        # degrees
        for v in vertices:
            expected = len(self.adj[v] & vertices)
            assert self.degree_in_graph[v] == expected, (
                f"degree mismatch for {v}: cached {self.degree_in_graph[v]}, actual {expected}"
            )
        assert set(self.degree_in_graph) == vertices
        # missing edges inside S
        sol = self.solution
        missing = 0
        for i, u in enumerate(sol):
            for w in sol[i + 1:]:
                if w not in self.adj[u]:
                    missing += 1
        assert missing == self.missing_in_solution, (
            f"missing_in_solution mismatch: cached {self.missing_in_solution}, actual {missing}"
        )
        # non-neighbour counters
        assert set(self.non_nbrs_in_solution) == self.candidates
        for v in self.candidates:
            expected = sum(1 for u in sol if u not in self.adj[v])
            assert self.non_nbrs_in_solution[v] == expected, (
                f"non_nbrs mismatch for {v}: cached {self.non_nbrs_in_solution[v]}, actual {expected}"
            )
