"""Upper bounds on the largest k-defective clique in an instance (Section 3.2.1).

Three bounds are used by the practical solver:

* **UB1** — the paper's improved coloring-based bound.  Candidates are
  partitioned into independent sets by a greedy coloring; inside each colour
  class the ``j``-th cheapest vertex is charged ``|\\bar{N}_S(v)| + j - 1``
  missing edges, and a global greedy selection of the cheapest weights is
  accumulated against the remaining budget ``k - |\\bar{E}(S)|``.
* **UB2** — ``min_{u ∈ S} d_g(u) + 1 + k`` [Chen et al. 2021].
* **UB3** — the degree-sequence bound of KDBB [Gao et al. 2022]: candidates
  sorted by ``|\\bar{N}_S(·)|``, accumulated against the remaining budget.

For the MADEC+ baseline the original (loose) coloring bound of
[Chen et al. 2021] — Equation (2) of the paper — is also provided.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set

from .instance import SearchState

__all__ = [
    "ub1_improved_coloring",
    "ub2_min_degree",
    "ub3_degree_sequence",
    "eq2_original_coloring",
    "color_candidates",
    "best_upper_bound",
]


def color_candidates(state: SearchState) -> List[List[int]]:
    """Greedily colour the candidate vertices of ``state`` into independent sets.

    Candidates are processed in non-increasing order of their degree inside
    the instance graph (a cheap stand-in for the reverse degeneracy order the
    paper uses on the full graph); each vertex receives the smallest colour
    not used by an already-coloured candidate neighbour.

    Returns the colour classes ``π_1, ..., π_c`` as lists of vertex ids.
    """
    adj = state.adj
    degree = state.degree_in_graph
    order = sorted(state.candidates, key=lambda v: (-degree[v], v))
    classes: List[List[int]] = []
    class_sets: List[Set[int]] = []
    for v in order:
        adjacency = adj[v]
        placed = False
        for members, member_set in zip(classes, class_sets):
            if member_set.isdisjoint(adjacency):
                members.append(v)
                member_set.add(v)
                placed = True
                break
        if not placed:
            classes.append([v])
            class_sets.append({v})
    return classes


def ub1_improved_coloring(state: SearchState, classes: List[List[int]] = None) -> int:
    """The paper's improved coloring-based upper bound **UB1**.

    Parameters
    ----------
    state:
        The current instance.
    classes:
        Optional pre-computed colour classes (from :func:`color_candidates`);
        when omitted they are computed here.

    Returns
    -------
    int
        An upper bound on the size of the largest k-defective clique that is
        contained in the instance graph and contains ``S``.
    """
    if classes is None:
        classes = color_candidates(state)
    non_nbrs = state.non_nbrs_in_solution
    budget = state.slack()
    if budget < 0:
        return len(state.solution)

    weights: List[int] = []
    for cls in classes:
        costs = sorted(non_nbrs[v] for v in cls)
        weights.extend(cost + j for j, cost in enumerate(costs))

    weights.sort()
    count = 0
    for w in weights:
        if budget - w < 0:
            break
        budget -= w
        count += 1
    return len(state.solution) + count


def ub2_min_degree(state: SearchState) -> int:
    """The min-degree bound **UB2**: ``min_{u ∈ S} d_g(u) + 1 + k``.

    Returns a value larger than any possible solution when ``S`` is empty,
    making the bound vacuous in that case (as in the paper).
    """
    if not state.solution:
        return state.graph_size
    degree = state.degree_in_graph
    return min(degree[u] for u in state.solution) + 1 + state.k


def ub3_degree_sequence(state: SearchState) -> int:
    """The degree-sequence bound **UB3** of KDBB.

    Candidates are sorted by their number of non-neighbours in ``S``; the
    bound is ``|S|`` plus the longest prefix whose total cost fits in the
    remaining budget ``k - |\\bar{E}(S)|``.
    """
    budget = state.slack()
    if budget < 0:
        return len(state.solution)
    costs = sorted(state.non_nbrs_in_solution[v] for v in state.candidates)
    count = 0
    for cost in costs:
        if budget - cost < 0:
            break
        budget -= cost
        count += 1
    return len(state.solution) + count


def eq2_original_coloring(state: SearchState, classes: List[List[int]] = None) -> int:
    """The original coloring bound of MADEC+ (Equation (2) of the paper).

    Each colour class ``π_i`` may contribute up to
    ``min(⌊(1 + sqrt(8k + 1)) / 2⌋, |π_i|)`` vertices; the bound ignores the
    missing edges already inside ``S`` and the candidate/solution non-edges,
    which is exactly why the paper's UB1 dominates it.
    """
    if classes is None:
        classes = color_candidates(state)
    cap = int(math.floor((1.0 + math.sqrt(8.0 * state.k + 1.0)) / 2.0))
    total = sum(min(cap, len(cls)) for cls in classes)
    return len(state.solution) + total


def best_upper_bound(
    state: SearchState,
    use_ub1: bool = True,
    use_ub2: bool = True,
    use_ub3: bool = True,
    classes: List[List[int]] = None,
) -> int:
    """Return the minimum of the enabled upper bounds for ``state``.

    When every bound is disabled the trivial bound ``|V(g)|`` is returned.
    ``classes`` optionally supplies pre-computed colour classes (from
    :func:`color_candidates`) so a caller that also evaluates
    :func:`eq2_original_coloring` — or evaluates several bounds per node —
    colours the candidates exactly once.
    """
    best = state.graph_size
    if use_ub2:
        best = min(best, ub2_min_degree(state))
    if use_ub3:
        best = min(best, ub3_degree_sequence(state))
    if use_ub1:
        if classes is None:
            classes = color_candidates(state)
        best = min(best, ub1_improved_coloring(state, classes))
    return best
