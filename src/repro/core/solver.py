"""The kDC branch-and-bound solver (Algorithms 1 and 2 of the paper).

Two public entry points are provided:

* :class:`KDCSolver` — a configurable solver object.  With the default
  :class:`~repro.core.config.SolverConfig` it is the full practical ``kDC``
  algorithm (Algorithm 2); with ``variant_config("kDC-t")`` it degenerates to
  the bare theoretical Algorithm 1 (branching rule BR plus reduction rules
  RR1/RR2 only).
* :func:`find_maximum_defective_clique` — a convenience function for one-off
  calls.

The solver is exact: unless a time or node budget interrupts it, the returned
set is a maximum k-defective clique and ``result.optimal`` is ``True``.

Backends
--------
Two interchangeable search-state backends implement the branch-and-bound:

* ``"set"`` — the original dict/set :class:`~repro.core.instance.SearchState`;
* ``"bitset"`` — packed adjacency bitmaps
  (:class:`~repro.core.bitset_state.BitsetSearchState` driven by
  :class:`~repro.core.fastpath.BitsetEngine`).  On instances with at least
  ``SolverConfig.decompose_threshold`` vertices after preprocessing (and a
  heuristic lower bound of at least ``k + 1``), the bitset backend further
  switches to the degeneracy decomposition of :mod:`repro.core.decompose`,
  which solves one small ego subproblem per vertex while threading the shared
  incumbent through as the lower bound.  With ``SolverConfig.workers >= 2``
  those ego subproblems run across a :mod:`multiprocessing` pool
  (:mod:`repro.core.parallel`) broadcasting the best size through shared
  memory; the optimal size returned is identical for every worker count.

``SolverConfig.backend`` selects between them; the default ``"auto"`` uses
the bitset backend whenever the reduced instance has at least
:data:`_AUTO_BITSET_MIN_VERTICES` vertices.  Both backends return identical
optimal sizes; the bitset path is simply much faster on non-toy inputs.

Budgets (``time_limit`` / ``node_limit``) are enforced during *all* phases:
the initial heuristic, the RR5/RR6 preprocessing, and the search itself
(including parallel workers) all check the deadline periodically, and an
interrupted solve returns the best solution found so far with
``optimal=False``.

Re-entrancy
-----------
All per-solve state (incumbent, statistics, deadline) lives in a
:class:`_SolveRun` created afresh by every :meth:`KDCSolver.solve` call;
the solver object itself holds only immutable configuration.  One
``KDCSolver`` instance may therefore be shared freely — reused sequentially,
called from several threads, or handed to worker dispatch — without one
solve corrupting another.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
import time
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import SolveCheckpoint

from ..exceptions import BudgetExceededError, InvalidParameterError
from ..graphs.graph import Graph, Vertex
from .bounds import ub1_improved_coloring, ub2_min_degree, ub3_degree_sequence
from .branching import select_branching_vertex
from .config import SolverConfig, variant_config
from .decompose import solve_decomposed
from .defective import validate_k
from .fastpath import BitsetEngine
from .instance import SearchState
from .parallel import solve_decomposed_parallel
from .prepared import PreparedInstance, prepare_instance
from .reductions import apply_reductions
from .result import SearchStats, SolveResult

__all__ = ["KDCSolver", "find_maximum_defective_clique", "maximum_defective_clique_size"]

#: Recursion depth head-room added on top of the candidate-set size.
_RECURSION_MARGIN = 256

#: Smallest reduced-instance size for which ``backend="auto"`` picks the
#: bitset backend; below this the set backend's lower setup cost wins.
_AUTO_BITSET_MIN_VERTICES = 32

#: Largest instance the *whole-graph* bitset search will accept: n adjacency
#: rows of n bits is O(n²/8) bytes, so when the degeneracy decomposition
#: cannot engage (incumbent < k + 1) bigger instances fall back to the
#: O(n + m) set backend instead of risking an out-of-memory abort.
_BITSET_WHOLE_GRAPH_MAX_VERTICES = 20_000

#: Serialises recursion-limit raises so concurrent set-backend solves never
#: observe a limit below what they asked for.
_RECURSION_LIMIT_LOCK = threading.Lock()


def _ensure_recursion_limit(depth_needed: int) -> None:
    """Raise the interpreter recursion limit to at least ``depth_needed``.

    The limit is only ever *increased* and never restored: a save/restore
    would race between concurrent solves (one thread restoring a small limit
    while another is still deep in recursion), whereas a monotone raise is
    safe — the limit is a guard against runaway recursion, and a deliberate
    deep search on this thread justifies keeping it for the process.
    """
    with _RECURSION_LIMIT_LOCK:
        if sys.getrecursionlimit() < depth_needed:
            sys.setrecursionlimit(depth_needed)


class _SolveRun:
    """All mutable state of one ``solve`` call.

    Created afresh per call so that a shared :class:`KDCSolver` instance is
    re-entrant: two concurrent or interleaved solves each own their
    incumbent, statistics and budget clock.
    """

    def __init__(
        self,
        config: SolverConfig,
        name: str,
        cancel: Optional[threading.Event] = None,
        checkpoint: Optional["SolveCheckpoint"] = None,
    ) -> None:
        self.config = config
        self.name = name
        self.cancel = cancel
        self.checkpoint = checkpoint
        self.stats = SearchStats()
        self.best: List[int] = []
        start = time.perf_counter()
        self.start = start
        self.deadline = start + config.time_limit if config.time_limit is not None else None
        self.node_limit = config.node_limit

    # ------------------------------------------------------------------ #
    def execute(self, graph: Graph, k: int) -> SolveResult:
        """Prepare-then-execute: the classic single-call solve path.

        The prepare phase (relabeling, heuristic, RR5/RR6 preprocessing,
        degeneracy order) is delegated to
        :func:`~repro.core.prepared.prepare_instance` and the resulting
        throwaway artifact handed to :meth:`execute_prepared` — the same two
        halves a prepare-once service reuses, so both routes are pinned to
        identical behavior by construction.
        """
        stats = self.stats

        if graph.num_vertices == 0:
            stats.elapsed_seconds = time.perf_counter() - self.start
            return SolveResult(clique=[], size=0, k=k, optimal=True, algorithm=self.name, stats=stats)

        # The budget may fire inside the heuristic or the preprocessing; the
        # on_heuristic hook keeps the partial incumbent (and the label map
        # needed to report it) so an interrupted prepare still returns the
        # best solution found so far with optimal=False, exactly as before
        # the compile/execute split.
        partial_to_label: List[Vertex] = []

        def on_heuristic(best: List[int], to_label: List[Vertex]) -> None:
            self.best = list(best)
            stats.initial_solution_size = len(best)
            partial_to_label[:] = to_label

        try:
            prepared = prepare_instance(
                graph,
                k,
                self.config,
                budget_check=self._check_budget,
                on_heuristic=on_heuristic,
                compute_digest=False,
            )
        except BudgetExceededError:
            stats.elapsed_seconds = time.perf_counter() - self.start
            clique = self._labeled_clique(partial_to_label)
            return SolveResult(
                clique=clique, size=len(clique), k=k, optimal=False,
                algorithm=self.name, stats=stats,
            )
        stats.prepare_ms = prepared.prepare_seconds * 1000.0
        return self.execute_prepared(prepared, k)

    def execute_prepared(self, prepared: PreparedInstance, k: int) -> SolveResult:
        """Run the branch-and-bound phase against a prepared artifact."""
        stats = self.stats
        prepared.seed_stats(stats)
        self.best = list(prepared.heuristic)
        optimal = True
        solve_start = time.perf_counter()
        try:
            self._check_budget()
            backend = self._resolve_backend(prepared, k)
            stats.backend = backend
            if prepared.working_n > 0:
                if backend == "bitset":
                    self._solve_bitset(prepared, k)
                else:
                    self._solve_set(prepared, k)
        except BudgetExceededError:
            optimal = False

        now = time.perf_counter()
        stats.solve_ms = (now - solve_start) * 1000.0
        stats.elapsed_seconds = now - self.start
        clique = self._labeled_clique(prepared.to_label)
        return SolveResult(
            clique=clique,
            size=len(clique),
            k=k,
            optimal=optimal,
            algorithm=self.name,
            stats=stats,
        )

    def _labeled_clique(self, to_label: Sequence[Vertex]) -> List[Vertex]:
        """Map ``self.best`` back to original labels (sorted when orderable)."""
        labels = [to_label[v] for v in self.best]
        try:
            return sorted(labels)
        except TypeError:  # mixed, unorderable vertex labels
            return labels

    # ------------------------------------------------------------------ #
    def _resolve_backend(self, prepared: PreparedInstance, k: int) -> str:
        """Map ``config.backend`` to the concrete backend used for this instance.

        The bitset backend's whole-graph mode allocates O(n²/8) bytes of
        adjacency rows, so when the decomposition cannot engage (no usable
        incumbent) very large instances are routed to the O(n + m) set
        backend even under ``backend="bitset"`` — running slower beats dying
        on memory, and the decomposition handles every realistically large
        input that has a heuristic lower bound.
        """
        config = self.config
        working_n = prepared.working_n
        backend = config.backend
        if backend == "auto":
            backend = "bitset" if working_n >= _AUTO_BITSET_MIN_VERTICES else "set"
        if backend == "bitset":
            decomposable = (
                working_n >= config.decompose_threshold and len(self.best) >= k + 1
            )
            if not decomposable and working_n > _BITSET_WHOLE_GRAPH_MAX_VERTICES:
                return "set"
        return backend

    def _solve_set(self, prepared: PreparedInstance, k: int) -> None:
        """Branch-and-bound over the dict/set :class:`SearchState` backend."""
        adj: List[set] = [set() for _ in range(prepared.n_original)]
        for v, nbrs in prepared.working_adj.items():
            adj[v] = set(nbrs)
        state = SearchState.initial(adj, k, vertices=set(prepared.working_adj))
        _ensure_recursion_limit(len(state.candidates) + _RECURSION_MARGIN)
        self._branch(state, depth=1)

    def _solve_bitset(self, prepared: PreparedInstance, k: int) -> None:
        """Branch-and-bound over packed adjacency bitmaps (optionally decomposed).

        Large instances (``>= config.decompose_threshold`` vertices) with a
        usable lower bound (``>= k + 1``, required by the diameter-2 argument
        of :mod:`repro.core.decompose`) are split into per-vertex ego
        subproblems — across a worker pool when ``config.workers >= 2`` —
        and everything else is one whole-graph bitset search over the
        artifact's packed rows.  Either way every branch-and-bound runs the
        engine selected by ``config.engine`` ("trail" undo-stack engine by
        default, "copy" for the copy-per-child baseline).
        """
        config = self.config
        self.stats.engine = config.engine
        if prepared.working_n >= config.decompose_threshold and len(self.best) >= k + 1:
            if config.workers >= 2:
                deadline = None
                if self.deadline is not None:
                    # Translate the perf_counter deadline into the monotonic
                    # clock, which is meaningful across processes.
                    deadline = time.monotonic() + (self.deadline - time.perf_counter())
                solve_decomposed_parallel(
                    None, k, config, self.stats, self._check_budget, self.best,
                    deadline=deadline, node_limit=self.node_limit,
                    adj=prepared.working_adj, decomposition=prepared.decomposition(),
                    checkpoint=self.checkpoint,
                )
            else:
                solve_decomposed(
                    None, k, config, self.stats, self._check_budget, self.best,
                    adj=prepared.working_adj, decomposition=prepared.decomposition(),
                    checkpoint=self.checkpoint,
                )
            return
        to_global, adj_bits = prepared.packed_adjacency()
        width = len(to_global)
        engine = BitsetEngine(
            config, self.stats, self._check_budget, self.best, to_global=to_global
        )
        engine.run(adj_bits, (1 << width) - 1, k)

    def _check_budget(self) -> None:
        if self.cancel is not None and self.cancel.is_set():
            raise BudgetExceededError("solve cancelled")
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise BudgetExceededError("time limit exceeded")
        if self.node_limit is not None and self.stats.nodes >= self.node_limit:
            raise BudgetExceededError("node limit exceeded")

    def _record_solution(self, vertices: List[int]) -> None:
        if len(vertices) > len(self.best):
            self.best = list(vertices)
            self.stats.improvements += 1

    def _branch(self, state: SearchState, depth: int) -> None:
        """Procedure Branch&Bound of Algorithms 1/2."""
        self._check_budget()
        stats = self.stats
        stats.nodes += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        config = self.config

        # Line 4: reduction rules.
        prune = apply_reductions(state, config, lower_bound=len(self.best), stats=stats)
        if prune:
            return

        # Line 5: if the whole instance graph is a k-defective clique, record it.
        if state.is_defective_clique():
            stats.leaves += 1
            self._record_solution(state.graph_vertices())
            return

        # Upper-bound pruning (Algorithm 2 only; a no-op for kDC-t).  The
        # bounds are evaluated cheapest-first and evaluation stops as soon as
        # one of them prunes the instance; this changes nothing about which
        # instances survive, only how much work is spent deciding it.  UB1
        # is the only coloring-based bound evaluated here, so it colours the
        # candidates itself (callers evaluating UB1 alongside eq2 share one
        # coloring through best_upper_bound's classes parameter instead).
        if config.use_ub1 or config.use_ub2 or config.use_ub3:
            incumbent = len(self.best)
            pruned = (
                (config.use_ub2 and ub2_min_degree(state) <= incumbent)
                or (config.use_ub3 and ub3_degree_sequence(state) <= incumbent)
                or (config.use_ub1 and ub1_improved_coloring(state) <= incumbent)
            )
            if pruned:
                stats.prunes_by_bound += 1
                return

        # Even when not a leaf, the partial solution S itself is a valid
        # k-defective clique and may beat the incumbent.
        self._record_solution(state.solution)

        # Line 6: branching vertex via rule BR.
        branching_vertex = select_branching_vertex(state)
        if branching_vertex is None:
            return

        # Line 7: left branch includes the branching vertex.
        left = state.copy()
        left.add_to_solution(branching_vertex)
        self._branch(left, depth + 1)

        # Line 8: right branch excludes it.  The current state is not needed
        # afterwards, so it is mutated in place instead of copied.
        state.remove_candidate(branching_vertex)
        self._branch(state, depth + 1)


class KDCSolver:
    """Exact maximum k-defective clique solver implementing the paper's kDC algorithm.

    Parameters
    ----------
    config:
        Feature flags and budgets; defaults to the full kDC configuration.
    name:
        Optional human-readable algorithm name recorded in results (defaults
        to ``"kDC"`` or ``"kDC-t"`` depending on the configuration).

    Notes
    -----
    The solver object holds only immutable configuration; every ``solve``
    call owns its state (see :class:`_SolveRun`), so a single instance may
    be reused — including concurrently — without corruption.
    """

    def __init__(self, config: Optional[SolverConfig] = None, name: Optional[str] = None) -> None:
        self.config = config if config is not None else SolverConfig()
        if name is not None:
            self.name = name
        else:
            self.name = "kDC" if self.config.uses_practical_techniques else "kDC-t"

    def solve(self, graph: Graph, k: int) -> SolveResult:
        """Compute a maximum k-defective clique of ``graph``.

        Parameters
        ----------
        graph:
            Input graph (not modified).
        k:
            Number of tolerated missing edges (``k >= 0``).

        Returns
        -------
        SolveResult
            The best clique found, with ``optimal=True`` unless a budget was hit.
        """
        validate_k(k)
        run = _SolveRun(self.config, self.name)
        return run.execute(graph, k)

    def solve_prepared(
        self,
        prepared: PreparedInstance,
        k: Optional[int] = None,
        *,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        cancel: Optional[threading.Event] = None,
        checkpoint: Optional["SolveCheckpoint"] = None,
    ) -> SolveResult:
        """Execute the branch-and-bound against an already-prepared artifact.

        The artifact (see :func:`~repro.core.prepared.prepare_instance`)
        carries the relabeling, heuristic incumbent, preprocessed graph and
        degeneracy order, so this call skips straight to the search phase.
        One artifact may be executed any number of times — including
        concurrently, since all per-call state lives in a fresh
        :class:`_SolveRun`.

        Parameters
        ----------
        prepared:
            Artifact produced by ``prepare_instance``.  Its prepare-relevant
            configuration (heuristic method, RR5/RR6) must match this
            solver's — a mismatch raises
            :class:`~repro.exceptions.InvalidParameterError` rather than
            silently answering for the wrong variant.
        k:
            Must equal ``prepared.k`` when given (the artifact's heuristic
            and preprocessing are ``k``-specific); defaults to it.
        time_limit, node_limit:
            Per-call budget overrides; when omitted the solver
            configuration's budgets apply.
        cancel:
            Optional :class:`threading.Event` polled alongside the budgets
            at every branch-and-bound node; setting it makes the solve
            return its best-so-far result with ``optimal=False`` promptly.
            This is the cooperative-cancellation hook the service's
            graceful drain uses.
        checkpoint:
            Optional :class:`~repro.core.checkpoint.SolveCheckpoint`
            threaded into the degeneracy-decomposition drivers: a
            decomposed solve skips the anchors a previous interrupted run
            journaled as completed and journals its own progress in turn.
            Ignored by non-decomposed solves (whole-graph searches have no
            subproblem granularity to checkpoint at).  The caller owns the
            checkpoint's lifecycle (``close``/``complete``).

        Returns
        -------
        SolveResult
            Identical (in optimal size) to ``solve`` on the source graph.
        """
        if k is None:
            k = prepared.k
        validate_k(k)
        if k != prepared.k:
            raise InvalidParameterError(
                f"PreparedInstance was prepared for k={prepared.k}, not k={k}; "
                "prepare a new artifact instead"
            )
        prepared.check_compatible(self.config)
        config = self.config
        overrides = {}
        if time_limit is not None:
            overrides["time_limit"] = time_limit
        if node_limit is not None:
            overrides["node_limit"] = node_limit
        if overrides:
            config = dataclasses.replace(config, **overrides)
        run = _SolveRun(config, self.name, cancel=cancel, checkpoint=checkpoint)
        return run.execute_prepared(prepared, k)


def find_maximum_defective_clique(
    graph: Graph,
    k: int,
    config: Optional[SolverConfig] = None,
    variant: Optional[str] = None,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
) -> SolveResult:
    """Find a maximum k-defective clique of ``graph`` (convenience wrapper around :class:`KDCSolver`).

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Number of tolerated missing edges.
    config:
        Explicit solver configuration; mutually exclusive with ``variant``.
    variant:
        Name of a paper variant (see :data:`repro.core.config.VARIANT_NAMES`),
        e.g. ``"kDC"``, ``"kDC-t"``, ``"kDC/UB1"``.
    time_limit, node_limit:
        Budgets applied when ``config`` is not given.

    Returns
    -------
    SolveResult
    """
    if config is not None and variant is not None:
        raise InvalidParameterError("pass either 'config' or 'variant', not both")
    if config is None:
        name = variant if variant is not None else "kDC"
        config = variant_config(name, time_limit=time_limit, node_limit=node_limit)
        solver = KDCSolver(config, name=name)
    else:
        solver = KDCSolver(config)
    return solver.solve(graph, k)


def maximum_defective_clique_size(graph: Graph, k: int, **kwargs) -> int:
    """Return only the size of a maximum k-defective clique of ``graph``."""
    return find_maximum_defective_clique(graph, k, **kwargs).size
