"""k-core extraction (Definition 2.4 of the paper).

The k-core of a graph is the maximal subgraph in which every vertex has
degree at least ``k``.  It is computed by iteratively deleting vertices whose
degree drops below ``k``; this runs in O(n + m) time.

The k-core is the machinery behind reduction rule **RR5** of the paper: with a
current best solution of size ``lb``, every vertex of a k-defective clique of
size > ``lb`` must have degree at least ``lb - k`` inside it, so restricting
the search to the ``(lb - k)``-core is safe.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Set

from .graph import Graph, Vertex

__all__ = ["k_core", "k_core_vertices", "core_reduce_in_place"]

#: Peeling steps between budget polls.
_BUDGET_STRIDE = 4096


def k_core_vertices(
    graph: Graph,
    k: int,
    budget_check: Optional[Callable[[], None]] = None,
) -> Set[Vertex]:
    """Return the vertex set of the k-core of ``graph``.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    k:
        Minimum degree requirement; ``k <= 0`` returns all vertices.
    budget_check:
        Optional callable polled every few thousand peeling steps; any
        exception it raises (e.g.
        :class:`~repro.exceptions.BudgetExceededError`) propagates before
        the graph is inspected further.

    Returns
    -------
    set
        Vertices of the (possibly empty) k-core.
    """
    if k <= 0:
        return graph.vertex_set()

    degree: Dict[Vertex, int] = graph.degrees()
    alive: Set[Vertex] = set(degree)
    queue = deque(v for v, d in degree.items() if d < k)
    queued = set(queue)

    steps = 0
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        if budget_check is not None:
            steps += 1
            if steps % _BUDGET_STRIDE == 0:
                budget_check()
        alive.discard(v)
        for u in graph.neighbors(v):
            if u in alive:
                degree[u] -= 1
                if degree[u] < k and u not in queued:
                    queue.append(u)
                    queued.add(u)
    return alive


def k_core(graph: Graph, k: int) -> Graph:
    """Return the k-core of ``graph`` as a new (vertex-induced) graph."""
    return graph.subgraph(k_core_vertices(graph, k))


def core_reduce_in_place(
    graph: Graph,
    k: int,
    budget_check: Optional[Callable[[], None]] = None,
) -> Set[Vertex]:
    """Reduce ``graph`` to its k-core in place, returning the removed vertices.

    This is the form used by the solver preprocessing (RR5): the working copy
    of the input graph is shrunk destructively so that subsequent reductions
    and the search itself operate on the smaller graph.  ``budget_check`` is
    forwarded to :func:`k_core_vertices`; if it fires the graph is left
    unmodified.
    """
    keep = k_core_vertices(graph, k, budget_check=budget_check)
    removed = graph.vertex_set() - keep
    graph.remove_vertices(removed)
    return removed
