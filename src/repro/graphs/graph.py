"""Undirected simple graph used by every algorithm in the package.

The graph is stored as a dictionary of adjacency *sets* which gives O(1)
expected-time edge queries and O(d(u)) neighbourhood iteration -- the access
pattern every branch-and-bound solver in this package relies on.  Vertices may
be arbitrary hashable labels; solvers that need contiguous integer ids call
:meth:`Graph.relabel`.

Only simple graphs are supported: self-loops raise
:class:`~repro.exceptions.SelfLoopError` and parallel edges are silently
collapsed (adding an existing edge is a no-op), matching the paper's setting
of unweighted, undirected simple graphs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..exceptions import EdgeNotFoundError, GraphError, SelfLoopError, VertexNotFoundError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Graph", "Vertex", "Edge"]


class Graph:
    """An unweighted, undirected simple graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to initialise the graph.
        Endpoints are added as vertices automatically.
    vertices:
        Optional iterable of vertices to add (possibly isolated).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.has_edge(0, 1)
    True
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges: int = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of edges."""
        return cls(edges=edges)

    @classmethod
    def from_adjacency(cls, adjacency: Mapping[Vertex, Iterable[Vertex]]) -> "Graph":
        """Build a graph from an adjacency mapping ``{u: iterable_of_neighbors}``.

        The mapping does not need to be symmetric; every listed pair is added
        as an undirected edge.
        """
        g = cls()
        for u, nbrs in adjacency.items():
            g.add_vertex(u)
            for v in nbrs:
                g.add_edge(u, v)
        return g

    @classmethod
    def complete(cls, n: int) -> "Graph":
        """Return the complete graph on vertices ``0 .. n-1``."""
        g = cls(vertices=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                g.add_edge(u, v)
        return g

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """Return the edgeless graph on vertices ``0 .. n-1``."""
        return cls(vertices=range(n))

    def copy(self) -> "Graph":
        """Return a deep copy of the graph (labels are shared, sets are not)."""
        g = Graph.__new__(Graph)
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices, ``n`` in the paper's notation."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``m`` in the paper's notation."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[v] == other._adj[v] for v in self._adj)

    def __hash__(self) -> int:  # Graphs are mutable; identity hash like list would be misleading.
        raise TypeError(
            "Graph objects are mutable and unhashable; use content_digest() "
            "for a canonical content key"
        )

    @staticmethod
    def _canonical_token(vertex: Vertex) -> str:
        # repr alone cannot be trusted across types (repr(1) == repr(1) is
        # fine, but distinct labels of different types could collide), so the
        # type name is folded in.
        return f"{type(vertex).__name__}:{vertex!r}"

    def content_digest(self) -> str:
        """Return a canonical SHA-256 hex digest of the graph's content.

        The digest depends only on the vertex labels and the edge set —
        never on insertion order — so two graphs that compare ``==`` always
        share a digest, and any edge/vertex change yields a new one.  This
        is the stable cache key :class:`Graph` deliberately refuses to
        provide via ``__hash__`` (graphs are mutable); callers such as the
        solver service's graph store key prepared artifacts and result
        caches by it.

        Vertices are canonicalised as ``"<type>:<repr>"`` strings, so the
        digest is defined for arbitrary (even unorderable, mixed-type)
        hashable labels as long as their ``repr`` is stable — true for the
        ints and strings produced by every loader in :mod:`repro.graphs.io`.
        """
        h = hashlib.sha256()
        for token in sorted(self._canonical_token(v) for v in self._adj):
            h.update(token.encode("utf-8"))
            h.update(b"\x00")
        h.update(b"\x01")  # domain separator: vertex section / edge section
        edge_tokens = []
        for u, v in self.iter_edges():
            a, b = self._canonical_token(u), self._canonical_token(v)
            edge_tokens.append((a, b) if a <= b else (b, a))
        for a, b in sorted(edge_tokens):
            h.update(a.encode("utf-8"))
            h.update(b"\x1f")
            h.update(b.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # Vertex operations
    # ------------------------------------------------------------------ #
    def vertices(self) -> List[Vertex]:
        """Return a list of all vertices."""
        return list(self._adj)

    def vertex_set(self) -> Set[Vertex]:
        """Return the set of all vertices (a fresh copy)."""
        return set(self._adj)

    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` to the graph (no-op if already present)."""
        if vertex not in self._adj:
            self._adj[vertex] = set()

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex from ``vertices``."""
        for v in vertices:
            self.add_vertex(v)

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges.

        Raises
        ------
        VertexNotFoundError
            If the vertex is not in the graph.
        """
        try:
            nbrs = self._adj.pop(vertex)
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        for u in nbrs:
            self._adj[u].discard(vertex)
        self._num_edges -= len(nbrs)

    def remove_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Remove every vertex in ``vertices`` (each must be present)."""
        for v in list(vertices):
            self.remove_vertex(v)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` is in the graph."""
        return vertex in self._adj

    # ------------------------------------------------------------------ #
    # Edge operations
    # ------------------------------------------------------------------ #
    def edges(self) -> List[Edge]:
        """Return every undirected edge exactly once as ``(u, v)`` pairs."""
        seen: Set[Vertex] = set()
        result: List[Edge] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    result.append((u, v))
            seen.add(u)
        return result

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over every undirected edge exactly once."""
        seen: Set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``, adding endpoints as needed.

        Adding an edge that already exists is a no-op.  Self-loops raise
        :class:`~repro.exceptions.SelfLoopError`.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge from ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not in the graph.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_edges(self, edges: Iterable[Edge]) -> None:
        """Remove every edge in ``edges`` (each must be present)."""
        for u, v in list(edges):
            self.remove_edge(u, v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    # ------------------------------------------------------------------ #
    # Neighbourhood queries
    # ------------------------------------------------------------------ #
    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the set of neighbours of ``vertex`` (a live view; do not mutate).

        Raises
        ------
        VertexNotFoundError
            If the vertex is not in the graph.
        """
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the degree of ``vertex``."""
        return len(self.neighbors(vertex))

    def degrees(self) -> Dict[Vertex, int]:
        """Return a mapping from vertex to its degree."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    def non_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return all vertices that are neither ``vertex`` nor adjacent to it.

        This is :math:`\\overline{N}_G(u)` in the paper's notation.
        """
        nbrs = self.neighbors(vertex)
        return {v for v in self._adj if v != vertex and v not in nbrs}

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Return the set of common neighbours of ``u`` and ``v``."""
        nu, nv = self.neighbors(u), self.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return {w for w in nu if w in nv}

    def adjacency(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        """Return an immutable snapshot of the adjacency structure."""
        return {v: frozenset(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------ #
    # Subgraphs & relabeling
    # ------------------------------------------------------------------ #
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices`` (``G[S]`` in the paper).

        Vertices not present in the graph raise
        :class:`~repro.exceptions.VertexNotFoundError`.
        """
        keep = set(vertices)
        for v in keep:
            if v not in self._adj:
                raise VertexNotFoundError(v)
        g = Graph.__new__(Graph)
        g._adj = {v: self._adj[v] & keep for v in keep}
        g._num_edges = sum(len(nbrs) for nbrs in g._adj.values()) // 2
        return g

    def relabel(self) -> Tuple["Graph", Dict[Vertex, int], List[Vertex]]:
        """Relabel vertices to contiguous integers ``0 .. n-1``.

        Returns
        -------
        (graph, to_int, to_label):
            ``graph`` is the relabeled graph, ``to_int`` maps original labels
            to integer ids, and ``to_label[i]`` recovers the original label of
            integer ``i``.
        """
        to_label = list(self._adj)
        to_int = {label: i for i, label in enumerate(to_label)}
        g = Graph.__new__(Graph)
        g._adj = {
            to_int[v]: {to_int[u] for u in nbrs} for v, nbrs in self._adj.items()
        }
        g._num_edges = self._num_edges
        return g, to_int, to_label

    def complement(self) -> "Graph":
        """Return the complement graph on the same vertex set."""
        verts = list(self._adj)
        g = Graph(vertices=verts)
        for i, u in enumerate(verts):
            nbrs = self._adj[u]
            for v in verts[i + 1:]:
                if v not in nbrs:
                    g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------ #
    # Structural measures
    # ------------------------------------------------------------------ #
    def density(self) -> float:
        """Return the edge density ``2m / (n (n-1))`` (0.0 for n < 2)."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    def missing_edge_count(self) -> int:
        """Return the number of non-edges, ``|\\bar{E}(g)|`` in the paper."""
        n = self.num_vertices
        return n * (n - 1) // 2 - self._num_edges

    def missing_edges(self) -> List[Edge]:
        """Return every non-edge of the graph (quadratic; use on small graphs)."""
        verts = list(self._adj)
        result: List[Edge] = []
        for i, u in enumerate(verts):
            nbrs = self._adj[u]
            for v in verts[i + 1:]:
                if v not in nbrs:
                    result.append((u, v))
        return result

    def is_clique(self, vertices: Optional[Iterable[Vertex]] = None) -> bool:
        """Return ``True`` if the (sub)graph induced by ``vertices`` is a clique.

        With ``vertices=None`` the whole graph is tested (Definition 2.1).
        """
        if vertices is None:
            verts = list(self._adj)
        else:
            verts = list(set(vertices))
            for v in verts:
                if v not in self._adj:
                    raise VertexNotFoundError(v)
        for i, u in enumerate(verts):
            nbrs = self._adj[u]
            for v in verts[i + 1:]:
                if v not in nbrs:
                    return False
        return True

    def count_missing_edges(self, vertices: Iterable[Vertex]) -> int:
        """Return the number of non-edges inside the subgraph induced by ``vertices``."""
        verts = list(set(vertices))
        for v in verts:
            if v not in self._adj:
                raise VertexNotFoundError(v)
        n = len(verts)
        keep = set(verts)
        internal_edges = sum(len(self._adj[v] & keep) for v in verts) // 2
        return n * (n - 1) // 2 - internal_edges

    def triangle_count_per_edge(self) -> Dict[Edge, int]:
        """Return, for every edge, the number of triangles containing it.

        The edge key is normalised so that iteration order of its endpoints in
        the graph decides the tuple order, matching :meth:`edges`.
        """
        support: Dict[Edge, int] = {}
        for u, v in self.iter_edges():
            support[(u, v)] = len(self.common_neighbors(u, v))
        return support

    def validate(self) -> None:
        """Check internal invariants; raise :class:`GraphError` on corruption.

        Intended for tests and debugging: verifies symmetry of the adjacency
        structure, absence of self-loops, and the cached edge count.
        """
        count = 0
        for u, nbrs in self._adj.items():
            if u in nbrs:
                raise GraphError(f"self-loop stored on vertex {u!r}")
            for v in nbrs:
                if v not in self._adj:
                    raise GraphError(f"dangling neighbour {v!r} of {u!r}")
                if u not in self._adj[v]:
                    raise GraphError(f"asymmetric edge ({u!r}, {v!r})")
            count += len(nbrs)
        if count != 2 * self._num_edges:
            raise GraphError(
                f"edge count mismatch: cached {self._num_edges}, actual {count // 2}"
            )
