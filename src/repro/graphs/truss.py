"""k-truss extraction (Definition 2.5 of the paper).

The k-truss of a graph is the maximal subgraph in which every edge
participates in at least ``k - 2`` triangles.  It is an *edge-induced*
subgraph and is contained in the (k-1)-core.  The standard peeling algorithm
removes edges of insufficient *support* (number of triangles through the
edge) until a fixed point, in O(δ(G) · m) time.

The k-truss underlies reduction rule **RR6** of the paper: with a current best
solution of size ``lb``, every edge of a k-defective clique larger than ``lb``
must have at least ``lb - k - 1`` common neighbours inside it, so reducing the
input graph to its ``(lb - k + 1)``-truss is safe.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .graph import Graph, Vertex

__all__ = ["edge_support", "k_truss", "k_truss_edges", "truss_reduce_in_place"]

#: Support-computation / peeling steps between budget polls.
_BUDGET_STRIDE = 4096

_EdgeKey = FrozenSet[Vertex]


def _key(u: Vertex, v: Vertex) -> _EdgeKey:
    return frozenset((u, v))


def edge_support(graph: Graph) -> Dict[_EdgeKey, int]:
    """Return the support (triangle count) of every edge.

    The support of edge ``(u, v)`` is ``|N(u) ∩ N(v)|``.
    """
    support: Dict[_EdgeKey, int] = {}
    for u, v in graph.iter_edges():
        support[_key(u, v)] = len(graph.common_neighbors(u, v))
    return support


def k_truss_edges(
    graph: Graph,
    k: int,
    budget_check: Optional[Callable[[], None]] = None,
) -> Set[Tuple[Vertex, Vertex]]:
    """Return the edges of the k-truss of ``graph``.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    k:
        Truss parameter; every surviving edge lies in at least ``k - 2``
        triangles of the surviving subgraph.  ``k <= 2`` keeps all edges.
    budget_check:
        Optional callable polled every few thousand steps of the support
        computation and the peeling loop — the two O(δ(G) · m) phases that
        dominate on large graphs; any exception it raises propagates.

    Returns
    -------
    set of (u, v) tuples
        The surviving edges, in the orientation reported by
        :meth:`Graph.iter_edges` on the input graph.
    """
    if k <= 2:
        return set(graph.iter_edges())

    threshold = k - 2
    # Work on a mutable adjacency copy so we can delete edges as we peel.
    adj: Dict[Vertex, Set[Vertex]] = {v: set(graph.neighbors(v)) for v in graph}
    support: Dict[_EdgeKey, int] = {}
    steps = 0
    for u, v in graph.iter_edges():
        if budget_check is not None:
            steps += 1
            if steps % _BUDGET_STRIDE == 0:
                budget_check()
        nu, nv = adj[u], adj[v]
        if len(nu) > len(nv):
            nu, nv = nv, nu
        support[_key(u, v)] = sum(1 for w in nu if w in nv)

    queue = deque(e for e, s in support.items() if s < threshold)
    queued = set(queue)
    alive: Set[_EdgeKey] = set(support)

    steps = 0
    while queue:
        e = queue.popleft()
        if e not in alive:
            continue
        if budget_check is not None:
            steps += 1
            if steps % _BUDGET_STRIDE == 0:
                budget_check()
        alive.discard(e)
        u, v = tuple(e)
        adj[u].discard(v)
        adj[v].discard(u)
        # Every common neighbour w loses a triangle on edges (u, w) and (v, w).
        nu, nv = adj[u], adj[v]
        if len(nu) > len(nv):
            nu, nv = nv, nu
            u, v = v, u
        for w in list(nu):
            if w in nv:
                for other in (_key(u, w), _key(v, w)):
                    if other in alive:
                        support[other] -= 1
                        if support[other] < threshold and other not in queued:
                            queue.append(other)
                            queued.add(other)

    result: Set[Tuple[Vertex, Vertex]] = set()
    for u, v in graph.iter_edges():
        if _key(u, v) in alive:
            result.add((u, v))
    return result


def k_truss(graph: Graph, k: int) -> Graph:
    """Return the k-truss of ``graph`` as a new graph.

    Vertices left isolated by the edge removals are dropped, matching the
    convention that the k-truss is an edge-induced subgraph.
    """
    edges = k_truss_edges(graph, k)
    g = Graph(edges=edges)
    return g


def truss_reduce_in_place(
    graph: Graph,
    k: int,
    budget_check: Optional[Callable[[], None]] = None,
) -> int:
    """Reduce ``graph`` to its k-truss in place; return the number of removed edges.

    Vertices that lose all incident edges are removed as well (they cannot be
    part of any solution larger than the current lower bound when RR6
    applies, because RR5 is always applied alongside).  ``budget_check`` is
    forwarded to :func:`k_truss_edges`; if it fires there the graph is left
    unmodified.
    """
    keep = k_truss_edges(graph, k, budget_check=budget_check)
    removed = 0
    for u, v in list(graph.iter_edges()):
        if (u, v) not in keep and (v, u) not in keep:
            graph.remove_edge(u, v)
            removed += 1
    isolated = [v for v in graph if graph.degree(v) == 0]
    graph.remove_vertices(isolated)
    return removed
