"""Graph readers and writers.

Supported formats
-----------------
* **Edge list** (``.txt``, ``.edges``): one ``u v`` pair per line; lines
  starting with ``#`` or ``%`` are comments.  This is the format used by the
  SNAP and Network Data Repository collections the paper evaluates on.
* **DIMACS** (``.clq``, ``.col``, ``.dimacs``): ``p edge n m`` header and
  ``e u v`` edge lines with 1-based vertex ids, the classic clique-benchmark
  format.
* **METIS** (``.graph``, ``.metis``): first line ``n m``, then line ``i``
  lists the (1-based) neighbours of vertex ``i`` — the format used by the
  DIMACS10 collection.

All readers return a :class:`~repro.graphs.graph.Graph` whose vertices are
integers, and all writers accept any graph (labels are written with ``str``).
"""

from __future__ import annotations

import os
from typing import Iterable, List, TextIO, Union

from ..exceptions import GraphFormatError
from .graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_metis",
    "write_metis",
    "load_graph",
    "save_graph",
]

PathLike = Union[str, "os.PathLike[str]"]


# --------------------------------------------------------------------------- #
# Edge list
# --------------------------------------------------------------------------- #
def read_edge_list(path: PathLike, comments: str = "#%") -> Graph:
    """Read a whitespace-separated edge list file.

    Vertex ids are parsed as integers when possible and kept as strings
    otherwise.  Self-loops and duplicate edges are ignored, matching how the
    paper's benchmark loaders sanitise raw repository data.  The
    ``# isolated: ...`` header emitted by :func:`write_edge_list` is parsed
    back, so edge-list round-trips preserve degree-0 vertices.
    """
    graph = Graph()
    with open(path, "r", encoding="utf-8") as handle:
        _parse_edge_lines(handle, graph, comments)
    return graph


def _parse_edge_lines(handle: TextIO, graph: Graph, comments: str) -> None:
    for lineno, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped[0] in comments:
            _parse_isolated_header(stripped, graph, comments)
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected two vertex ids, got {stripped!r}")
        u, v = _coerce(parts[0]), _coerce(parts[1])
        if u == v:
            continue  # drop self-loops from raw data
        graph.add_edge(u, v)


def _parse_isolated_header(stripped: str, graph: Graph, comments: str) -> None:
    """Recover isolated vertices from a ``# isolated: ...`` comment line."""
    if not stripped:
        return
    body = stripped.lstrip(comments).strip()
    if body.startswith("isolated:"):
        for token in body[len("isolated:"):].split():
            graph.add_vertex(_coerce(token))


def _coerce(token: str) -> Union[int, str]:
    try:
        return int(token)
    except ValueError:
        return token


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as an edge list; isolated vertices are listed in the header."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
            isolated = [v for v in graph if graph.degree(v) == 0]
            if isolated:
                handle.write("# isolated: " + " ".join(str(v) for v in isolated) + "\n")
        for u, v in graph.iter_edges():
            handle.write(f"{u} {v}\n")


# --------------------------------------------------------------------------- #
# DIMACS
# --------------------------------------------------------------------------- #
def read_dimacs(path: PathLike) -> Graph:
    """Read a DIMACS ``.clq``/``.col`` file (1-based vertex ids become 0-based)."""
    graph = Graph()
    declared_n = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("c"):
                continue
            parts = stripped.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphFormatError(f"line {lineno}: malformed problem line {stripped!r}")
                declared_n = int(parts[2])
                graph.add_vertices(range(declared_n))
            elif parts[0] == "e":
                if len(parts) < 3:
                    raise GraphFormatError(f"line {lineno}: malformed edge line {stripped!r}")
                if declared_n is None:
                    raise GraphFormatError(
                        f"line {lineno}: edge line before the 'p edge' problem line"
                    )
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                if not (0 <= u < declared_n and 0 <= v < declared_n):
                    raise GraphFormatError(
                        f"line {lineno}: edge endpoint out of range 1..{declared_n}: {stripped!r}"
                    )
                if u == v:
                    continue
                graph.add_edge(u, v)
            else:
                raise GraphFormatError(f"line {lineno}: unknown record type {parts[0]!r}")
    if declared_n is None:
        raise GraphFormatError("missing 'p edge' problem line")
    return graph


def write_dimacs(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` in DIMACS format.  Vertices are relabeled to ``1..n``."""
    relabeled, _, _ = graph.relabel()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("c written by repro.graphs.io\n")
        handle.write(f"p edge {relabeled.num_vertices} {relabeled.num_edges}\n")
        for u, v in relabeled.iter_edges():
            handle.write(f"e {u + 1} {v + 1}\n")


# --------------------------------------------------------------------------- #
# METIS
# --------------------------------------------------------------------------- #
def read_metis(path: PathLike) -> Graph:
    """Read a METIS adjacency file (format used by the DIMACS10 collection).

    Comment lines start with ``%``.  The adjacency line of an isolated vertex
    is blank, so blank lines are meaningful and are only skipped before the
    header.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    data = [line for line in lines if not line.lstrip().startswith("%")]
    while data and not data[0].strip():
        data.pop(0)
    if not data:
        raise GraphFormatError("empty METIS file")
    header = data[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"malformed METIS header {data[0]!r}")
    n = int(header[0])
    graph = Graph(vertices=range(n))
    if len(data) - 1 < n:
        raise GraphFormatError(f"METIS file declares {n} vertices but has {len(data) - 1} adjacency lines")
    for i in range(n):
        for token in data[1 + i].split():
            j = int(token) - 1
            if j == i:
                continue
            if not 0 <= j < n:
                raise GraphFormatError(f"vertex index {j + 1} out of range on line {i + 2}")
            graph.add_edge(i, j)
    return graph


def write_metis(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` in METIS format.  Vertices are relabeled to ``1..n``."""
    relabeled, _, _ = graph.relabel()
    n = relabeled.num_vertices
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{n} {relabeled.num_edges}\n")
        for i in range(n):
            nbrs = sorted(relabeled.neighbors(i))
            handle.write(" ".join(str(j + 1) for j in nbrs) + "\n")


# --------------------------------------------------------------------------- #
# Format dispatch
# --------------------------------------------------------------------------- #
_EDGE_EXTS = {".txt", ".edges", ".edgelist", ".el"}
_DIMACS_EXTS = {".clq", ".col", ".dimacs"}
_METIS_EXTS = {".graph", ".metis"}


def load_graph(path: PathLike, fmt: str = "auto") -> Graph:
    """Load a graph, inferring the format from the file extension by default.

    Parameters
    ----------
    path:
        File to read.
    fmt:
        One of ``"auto"``, ``"edgelist"``, ``"dimacs"``, ``"metis"``.
    """
    fmt = _resolve_format(path, fmt)
    if fmt == "edgelist":
        return read_edge_list(path)
    if fmt == "dimacs":
        return read_dimacs(path)
    if fmt == "metis":
        return read_metis(path)
    raise GraphFormatError(f"unknown graph format {fmt!r}")


def save_graph(graph: Graph, path: PathLike, fmt: str = "auto") -> None:
    """Save a graph, inferring the format from the file extension by default."""
    fmt = _resolve_format(path, fmt)
    if fmt == "edgelist":
        write_edge_list(graph, path)
    elif fmt == "dimacs":
        write_dimacs(graph, path)
    elif fmt == "metis":
        write_metis(graph, path)
    else:
        raise GraphFormatError(f"unknown graph format {fmt!r}")


def _resolve_format(path: PathLike, fmt: str) -> str:
    if fmt != "auto":
        return fmt
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext in _EDGE_EXTS:
        return "edgelist"
    if ext in _DIMACS_EXTS:
        return "dimacs"
    if ext in _METIS_EXTS:
        return "metis"
    supported = ", ".join(sorted(_EDGE_EXTS | _DIMACS_EXTS | _METIS_EXTS))
    raise GraphFormatError(
        f"cannot infer graph format from extension {ext!r} of {os.fspath(path)!r}; "
        f"supported extensions: {supported} (or pass fmt='edgelist'/'dimacs'/'metis' explicitly)"
    )
