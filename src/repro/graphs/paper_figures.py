"""Deterministic constructions of the example graphs used throughout the paper.

These small graphs appear in the paper's figures and running examples; they
are reproduced here so unit tests can check the algorithms against the exact
claims made in the text (e.g. "the maximum 1-defective clique of Figure 2 has
size 5 and misses edge (v2, v4)").
"""

from __future__ import annotations

from .generators import complete_multipartite_graph
from .graph import Graph

__all__ = [
    "figure1_graph",
    "figure2_graph",
    "figure4_graph",
    "figure5_graph",
    "figure6_graph",
]


def figure1_graph() -> Graph:
    """The 8-vertex graph of Figure 1 ("Clique vs. k-Defective Clique").

    The paper states its maximum clique size is 4 and that the maximum
    k-defective clique size is ``4 + k`` for every ``k <= 4``; in particular
    the entire graph is a 4-defective clique and removing any single vertex
    yields a 3-defective clique.  A graph with these properties is the
    complete graph K8 minus a perfect matching (8 vertices, 4 missing edges):
    the whole graph misses 4 edges, deleting any vertex leaves 3 missing
    edges, and the largest set avoiding all matching pairs has 4 vertices.
    """
    g = Graph.complete(8)
    for u, v in ((0, 1), (2, 3), (4, 5), (6, 7)):
        g.remove_edge(u, v)
    return g


def figure2_graph() -> Graph:
    """The 12-vertex example graph of Figure 2.

    Vertices are labelled 1..12 to match the paper's v1..v12.  The structure
    follows the paper's description and running examples:

    * ``{v8, ..., v12}`` is a maximum clique (size 5) and also a maximum
      1-defective clique;
    * ``{v1, ..., v6}`` misses only the edges (v2, v4) and (v1, v5), so both
      ``{v1, v2, v3, v4, v6}`` and ``{v1, v2, v3, v5, v6}`` are 1-defective
      cliques of size 5 and ``{v1, ..., v6}`` is a 2-defective clique of
      size 6;
    * ``v7`` is adjacent to ``v1``, ``v5`` and ``v6`` only;
    * a degeneracy ordering is ``(v7, v1, ..., v6, v8, ..., v12)`` with
      degeneracy 4 (the whole graph is a 3-core, removing v7 gives a 4-core).
    """
    g = Graph(vertices=range(1, 13))
    left = [1, 2, 3, 4, 5, 6]
    missing = {(2, 4), (1, 5)}
    for i, u in enumerate(left):
        for v in left[i + 1:]:
            if (u, v) not in missing and (v, u) not in missing:
                g.add_edge(u, v)
    # v7 attaches to v1, v5, v6 (degree 3, the first vertex peeled).
    for v in (1, 5, 6):
        g.add_edge(7, v)
    # Right block: clique on v8..v12.
    right = [8, 9, 10, 11, 12]
    for i, u in enumerate(right):
        for v in right[i + 1:]:
            g.add_edge(u, v)
    return g


def figure4_graph() -> Graph:
    """The 9-vertex running example of Figure 4 (used for Algorithm 1).

    ``v1`` is adjacent to every other vertex; ``g1`` is the subgraph on
    ``{v2, ..., v5}`` and ``g2`` the subgraph on ``{v6, ..., v9}``, with every
    vertex of g1 adjacent to every vertex of g2 (the thick edge).  Within g1
    the edges are the 4-cycle v2-v3-v4-v5 (so (v2, v4) and (v3, v5) are
    missing) and within g2 the 4-cycle v6-v7-v8-v9 (so (v6, v8) and (v7, v9)
    are missing).  This reproduces the behaviour discussed in Example 3.2:
    with k = 3, RR2 greedily adds v1..v5, and adding v6 then v8 accumulates
    three missing edges.
    """
    g = Graph(vertices=range(1, 10))
    for v in range(2, 10):
        g.add_edge(1, v)
    g1 = [2, 3, 4, 5]
    g2 = [6, 7, 8, 9]
    cycle_edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    for a, b in cycle_edges:
        g.add_edge(g1[a], g1[b])
        g.add_edge(g2[a], g2[b])
    for u in g1:
        for v in g2:
            g.add_edge(u, v)
    return g


def figure5_graph() -> Graph:
    """The 11-vertex graph of Figure 5 (upper-bound running example).

    The partial solution ``S`` consists of two isolated vertices (labelled
    "s1" and "s2"); the rest is a complete 3-partite graph with parts of size
    three (27 edges total).  With k = 3 the old coloring bound (Eq. (2))
    evaluates to 11 while UB1 evaluates to 3.
    """
    g = complete_multipartite_graph([3, 3, 3])
    g.add_vertex("s1")
    g.add_vertex("s2")
    return g


def figure5_partition():
    """Return (S, [pi1, pi2, pi3]) for the Figure 5 running example."""
    parts = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
    return ["s1", "s2"], parts


def figure6_graph() -> Graph:
    """A 7-vertex graph in the spirit of Figure 6 (initial-solution example).

    The exact adjacency of the paper's Figure 6 is not fully specified in the
    text, so this construction keeps the properties Example 3.8 relies on:

    * ``{v1, v2, v3, v4}`` is a 1-defective clique (it misses only the edge
      (v2, v4)) and the maximum 1-defective clique of the graph has size 4,
      so an optimal heuristic answer exists among the neighbourhood subgraphs
      that ``Degen-opt`` explores;
    * the graph also contains the triangle ``{v4, v6, v7}`` that a plain
      degeneracy-suffix heuristic tends to report, so ``Degen-opt`` can beat
      ``Degen`` on this instance.
    """
    g = Graph(vertices=range(1, 8))
    edges = [
        (1, 2), (1, 3), (1, 4),          # v1 with its higher-ranked neighbours
        (2, 3),                          # v2-v3 (v2-v4 missing: 1 defect in {v1..v4})
        (3, 4),
        (4, 6), (4, 7), (6, 7),          # the triangle the Degen suffix finds
        (5, 6), (5, 2),                  # v5 attaches loosely
        (3, 6),                          # makes the suffix {v3,v4,v6,v7} miss 2 edges
    ]
    for u, v in edges:
        g.add_edge(u, v)
    return g
