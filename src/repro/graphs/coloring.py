"""Greedy graph coloring used by the coloring-based upper bounds.

The paper (Section 3.2.3) colours vertices greedily in the *reverse* of a
degeneracy ordering and assigns each vertex the smallest colour not taken by
an already-coloured neighbour.  This uses at most ``δ(G) + 1`` colours and
runs in O(n + m) time.  Vertices sharing a colour form an independent set,
which is exactly what the upper bounds UB1 and Eq. (2) rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .degeneracy import degeneracy_ordering
from .graph import Graph, Vertex

__all__ = ["greedy_coloring", "color_classes", "is_proper_coloring"]


def greedy_coloring(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    restrict_to: Optional[Iterable[Vertex]] = None,
) -> Dict[Vertex, int]:
    """Colour ``graph`` greedily, returning a vertex → colour-index mapping.

    Parameters
    ----------
    graph:
        The graph to colour.
    order:
        Optional explicit colouring order.  When omitted, the reverse of a
        degeneracy ordering is used, matching the paper's choice.
    restrict_to:
        Optional subset of vertices to colour (e.g. ``V(g) \\ S`` inside the
        solver); vertices outside the subset are ignored entirely, including
        as neighbours.

    Returns
    -------
    dict
        Colours are consecutive integers starting at 0.
    """
    if restrict_to is not None:
        allowed = set(restrict_to)
    else:
        allowed = graph.vertex_set()

    if order is None:
        ordering = degeneracy_ordering(graph).ordering
        order = list(reversed(ordering))

    colors: Dict[Vertex, int] = {}
    for v in order:
        if v not in allowed:
            continue
        used = {colors[u] for u in graph.neighbors(v) if u in colors and u in allowed}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def color_classes(colors: Dict[Vertex, int]) -> List[List[Vertex]]:
    """Group a colouring into colour classes (independent sets).

    The returned list is indexed by colour: ``classes[i]`` holds every vertex
    with colour ``i``.  These are the partitions ``π_1, ..., π_c`` of the
    paper's upper-bound computations.
    """
    if not colors:
        return []
    num = max(colors.values()) + 1
    classes: List[List[Vertex]] = [[] for _ in range(num)]
    for v, c in colors.items():
        classes[c].append(v)
    return classes


def is_proper_coloring(graph: Graph, colors: Dict[Vertex, int]) -> bool:
    """Return ``True`` if no edge of ``graph`` joins two same-coloured vertices.

    Only edges with both endpoints coloured are checked, so the function can
    be used on partial colourings.
    """
    for u, v in graph.iter_edges():
        if u in colors and v in colors and colors[u] == colors[v]:
            return False
    return True
