"""Degeneracy ordering and core numbers (Definition 2.3 of the paper).

The peeling algorithm repeatedly removes a vertex of minimum degree from the
remaining graph and appends it to the ordering.  Using bucket queues this runs
in O(n + m) time.  The largest minimum degree seen at removal time is the
degeneracy :math:`\\delta(G)`, and the per-vertex value is its *core number*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .graph import Graph, Vertex

__all__ = [
    "DegeneracyResult",
    "degeneracy_ordering",
    "core_numbers",
    "degeneracy",
]


@dataclass(frozen=True)
class DegeneracyResult:
    """Output of the peeling algorithm.

    Attributes
    ----------
    ordering:
        The degeneracy ordering ``(v_1, ..., v_n)``: each ``v_i`` has minimum
        degree in the subgraph induced by ``{v_i, ..., v_n}``.
    core_number:
        Mapping from vertex to its core number (the largest ``k`` such that
        the vertex belongs to the k-core).
    degeneracy:
        The degeneracy :math:`\\delta(G)`, i.e. the maximum core number
        (0 for an empty or edgeless graph).
    position:
        Mapping from vertex to its index in ``ordering``.
    """

    ordering: List[Vertex]
    core_number: Dict[Vertex, int]
    degeneracy: int
    position: Dict[Vertex, int] = field(default_factory=dict)

    def rank(self, vertex: Vertex) -> int:
        """Return the position of ``vertex`` in the degeneracy ordering."""
        return self.position[vertex]

    def higher_ranked_neighbors(self, graph: Graph, vertex: Vertex) -> List[Vertex]:
        """Return the neighbours of ``vertex`` that appear later in the ordering.

        This is the set :math:`N^+(u)` used by ``Degen-opt`` (Algorithm 4).
        """
        pos = self.position[vertex]
        return [u for u in graph.neighbors(vertex) if self.position[u] > pos]


def degeneracy_ordering(graph: Graph) -> DegeneracyResult:
    """Compute a degeneracy ordering with the bucket-based peeling algorithm.

    Runs in O(n + m) time.  Ties are broken by bucket insertion order, which
    makes the result deterministic for a fixed graph construction order.

    Parameters
    ----------
    graph:
        The input graph; it is not modified.

    Returns
    -------
    DegeneracyResult
        The ordering, per-vertex core numbers, and the degeneracy.
    """
    n = graph.num_vertices
    if n == 0:
        return DegeneracyResult(ordering=[], core_number={}, degeneracy=0, position={})

    degree: Dict[Vertex, int] = graph.degrees()
    max_degree = max(degree.values())

    # Bucket queue: buckets[d] holds vertices believed to have degree d.
    # Entries may become stale when a neighbour removal lowers a vertex's
    # degree; stale entries are skipped when popped.
    buckets: List[List[Vertex]] = [[] for _ in range(max_degree + 1)]
    for v, d in degree.items():
        buckets[d].append(v)

    removed: Set[Vertex] = set()
    core_number: Dict[Vertex, int] = {}
    ordering: List[Vertex] = []
    degeneracy_value = 0
    d = 0

    while len(ordering) < n:
        while d <= max_degree and not buckets[d]:
            d += 1
        v = buckets[d].pop()
        if v in removed or degree[v] != d:
            continue  # stale bucket entry

        removed.add(v)
        degeneracy_value = max(degeneracy_value, d)
        core_number[v] = degeneracy_value
        ordering.append(v)

        for u in graph.neighbors(v):
            if u not in removed:
                degree[u] -= 1
                buckets[degree[u]].append(u)
                if degree[u] < d:
                    d = degree[u]

    position = {v: i for i, v in enumerate(ordering)}
    return DegeneracyResult(
        ordering=ordering,
        core_number=core_number,
        degeneracy=degeneracy_value,
        position=position,
    )


def core_numbers(graph: Graph) -> Dict[Vertex, int]:
    """Return the core number of every vertex."""
    return degeneracy_ordering(graph).core_number


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy :math:`\\delta(G)` of the graph."""
    return degeneracy_ordering(graph).degeneracy
