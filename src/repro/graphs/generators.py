"""Random and deterministic graph generators.

These generators are the substrate that stands in for the paper's three
benchmark collections (real-world graphs, Facebook social networks, and
DIMACS10&SNAP graphs), which cannot be downloaded in this offline
environment.  Each generator takes an explicit ``seed`` so every experiment in
the repository is reproducible.

The generator families are chosen so that the structural properties the kDC
algorithm exploits are present: heavy-tailed degree distributions, low
degeneracy relative to the number of vertices, and localised dense regions
(near-cliques) that are larger than the maximum clique.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import InvalidParameterError
from .graph import Graph, Vertex

__all__ = [
    "gnp_random_graph",
    "gnm_random_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "relaxed_caveman_graph",
    "planted_defective_clique_graph",
    "social_network_graph",
    "mesh_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "complete_multipartite_graph",
    "turan_graph",
    "split_graph",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidParameterError(message)


# --------------------------------------------------------------------------- #
# Classic random models
# --------------------------------------------------------------------------- #
def gnp_random_graph(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """Erdős–Rényi G(n, p): each of the n·(n-1)/2 edges appears independently with probability ``p``."""
    _require(n >= 0, "n must be non-negative")
    _require(0.0 <= p <= 1.0, "p must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    if p <= 0.0:
        return graph
    if p >= 1.0:
        return Graph.complete(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def gnm_random_graph(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """Erdős–Rényi G(n, m): exactly ``m`` distinct edges chosen uniformly at random."""
    _require(n >= 0, "n must be non-negative")
    max_edges = n * (n - 1) // 2
    _require(0 <= m <= max_edges, f"m must be in [0, {max_edges}] for n={n}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    if m == max_edges:
        return Graph.complete(n)
    added = 0
    seen: Set[Tuple[int, int]] = set()
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(u, v)
        added += 1
    return graph


def barabasi_albert_graph(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """Barabási–Albert preferential attachment: each new vertex attaches to ``m`` existing vertices.

    Produces the heavy-tailed degree distributions typical of the paper's
    real-world collection.
    """
    _require(m >= 1, "m must be at least 1")
    _require(n >= m + 1, "n must be at least m + 1")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    # Start from a star on m+1 vertices so every vertex has degree >= 1.
    repeated: List[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for v in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            graph.add_edge(v, t)
            repeated.extend((v, t))
    return graph


def powerlaw_cluster_graph(n: int, m: int, p: float, seed: Optional[int] = None) -> Graph:
    """Holme–Kim powerlaw-cluster model: BA attachment with probability ``p`` of closing a triangle.

    Combines a heavy tail with high clustering, which is what makes maximum
    k-defective cliques noticeably larger than maximum cliques in social
    networks (Table 5 of the paper).
    """
    _require(m >= 1, "m must be at least 1")
    _require(n >= m + 1, "n must be at least m + 1")
    _require(0.0 <= p <= 1.0, "p must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    repeated: List[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for v in range(m + 1, n):
        added = 0
        target = rng.choice(repeated)
        while added < m:
            if not graph.has_edge(v, target) and target != v:
                graph.add_edge(v, target)
                repeated.extend((v, target))
                added += 1
                # triangle-closing step
                if added < m and rng.random() < p:
                    nbrs = [u for u in graph.neighbors(target) if u != v and not graph.has_edge(v, u)]
                    if nbrs:
                        w = rng.choice(nbrs)
                        graph.add_edge(v, w)
                        repeated.extend((v, w))
                        added += 1
            target = rng.choice(repeated)
    return graph


def relaxed_caveman_graph(
    num_cliques: int,
    clique_size: int,
    rewire_p: float,
    seed: Optional[int] = None,
) -> Graph:
    """Relaxed caveman graph: disjoint cliques whose edges are rewired with probability ``rewire_p``.

    A classic community-structure model; the rewired cliques become
    k-defective cliques for small ``k``, which is exactly the structure the
    solver should recover.
    """
    _require(num_cliques >= 1, "num_cliques must be at least 1")
    _require(clique_size >= 1, "clique_size must be at least 1")
    _require(0.0 <= rewire_p <= 1.0, "rewire_p must be in [0, 1]")
    rng = random.Random(seed)
    n = num_cliques * clique_size
    graph = Graph(vertices=range(n))
    for c in range(num_cliques):
        base = c * clique_size
        members = range(base, base + clique_size)
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j)
    # Rewire: each edge is, with probability rewire_p, replaced by an edge to a random vertex.
    for u, v in list(graph.iter_edges()):
        if rng.random() < rewire_p:
            w = rng.randrange(n)
            if w != u and not graph.has_edge(u, w):
                graph.remove_edge(u, v)
                graph.add_edge(u, w)
    return graph


# --------------------------------------------------------------------------- #
# Models aimed at the paper's workloads
# --------------------------------------------------------------------------- #
def planted_defective_clique_graph(
    n: int,
    clique_size: int,
    k: int,
    background_p: float = 0.05,
    seed: Optional[int] = None,
) -> Graph:
    """Plant a k-defective clique of ``clique_size`` vertices in a sparse G(n, p) background.

    The planted subgraph is a complete graph on ``clique_size`` vertices with
    exactly ``k`` edges removed (chosen at random), so the planted set is a
    k-defective clique but not a (k-1)-defective clique whenever ``k >= 1``.
    The remaining vertices form an Erdős–Rényi background, and every planted
    vertex receives a few random edges into the background so the planted set
    is not trivially separable.

    This generator gives experiments a known optimum to compare against.
    """
    _require(clique_size <= n, "clique_size cannot exceed n")
    _require(clique_size >= 2, "clique_size must be at least 2")
    max_missing = clique_size * (clique_size - 1) // 2
    _require(0 <= k < max_missing, "k must be in [0, C(clique_size, 2))")
    rng = random.Random(seed)

    graph = gnp_random_graph(n, background_p, seed=rng.randrange(2**31))
    planted = list(range(clique_size))
    # Complete the planted set, then remove exactly k internal edges.
    for i in planted:
        for j in planted:
            if i < j and not graph.has_edge(i, j):
                graph.add_edge(i, j)
    internal = [(i, j) for i in planted for j in planted if i < j]
    for (i, j) in rng.sample(internal, k):
        graph.remove_edge(i, j)
    # Light attachment of the planted set to the background.
    background = list(range(clique_size, n))
    if background:
        for v in planted:
            for _ in range(2):
                w = rng.choice(background)
                if not graph.has_edge(v, w):
                    graph.add_edge(v, w)
    return graph


def social_network_graph(
    n: int,
    num_communities: int = 8,
    intra_p: float = 0.4,
    inter_p: float = 0.01,
    hub_fraction: float = 0.02,
    seed: Optional[int] = None,
) -> Graph:
    """A Facebook-style social network: dense communities, sparse inter-community edges, a few hubs.

    This is the stand-in for the paper's Facebook graphs collection: the
    dense communities produce large near-cliques whose maximum k-defective
    cliques noticeably exceed the maximum clique.
    """
    _require(n >= 1, "n must be positive")
    _require(num_communities >= 1, "num_communities must be positive")
    _require(0.0 <= intra_p <= 1.0 and 0.0 <= inter_p <= 1.0, "probabilities must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))

    community: Dict[int, int] = {v: rng.randrange(num_communities) for v in range(n)}
    members: List[List[int]] = [[] for _ in range(num_communities)]
    for v, c in community.items():
        members[c].append(v)

    for group in members:
        for i, u in enumerate(group):
            for v in group[i + 1:]:
                if rng.random() < intra_p:
                    graph.add_edge(u, v)

    # sparse global edges
    num_inter = int(inter_p * n * max(1, num_communities))
    for _ in range(num_inter):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and community[u] != community[v]:
            graph.add_edge(u, v)

    # hubs connect widely, mimicking high-degree users
    num_hubs = max(1, int(hub_fraction * n))
    hubs = rng.sample(range(n), num_hubs)
    for h in hubs:
        extra = rng.sample(range(n), min(n - 1, max(5, n // 20)))
        for v in extra:
            if v != h:
                graph.add_edge(h, v)
    return graph


def mesh_graph(rows: int, cols: int) -> Graph:
    """A rows × cols grid graph (DIMACS10-style mesh instance)."""
    _require(rows >= 1 and cols >= 1, "rows and cols must be positive")
    graph = Graph(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


# --------------------------------------------------------------------------- #
# Deterministic families
# --------------------------------------------------------------------------- #
def cycle_graph(n: int) -> Graph:
    """Cycle on ``n`` vertices (n >= 3); n < 3 returns a path."""
    _require(n >= 0, "n must be non-negative")
    graph = Graph(vertices=range(n))
    if n >= 2:
        for v in range(n - 1):
            graph.add_edge(v, v + 1)
    if n >= 3:
        graph.add_edge(n - 1, 0)
    return graph


def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices."""
    _require(n >= 0, "n must be non-negative")
    graph = Graph(vertices=range(n))
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


def star_graph(n: int) -> Graph:
    """Star with centre 0 and ``n`` leaves (n + 1 vertices)."""
    _require(n >= 0, "n must be non-negative")
    graph = Graph(vertices=range(n + 1))
    for leaf in range(1, n + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` vertices (alias for :meth:`Graph.complete`)."""
    return Graph.complete(n)


def complete_multipartite_graph(sizes: Sequence[int]) -> Graph:
    """Complete multipartite graph with the given part sizes.

    Every pair of vertices from different parts is adjacent, and parts are
    independent sets.  The 3-partite clique in the paper's Figure 5 is
    ``complete_multipartite_graph([3, 3, 3])``.
    """
    _require(all(s >= 0 for s in sizes), "part sizes must be non-negative")
    graph = Graph(vertices=range(sum(sizes)))
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for s in sizes:
        boundaries.append((start, start + s))
        start += s
    for i, (a_start, a_end) in enumerate(boundaries):
        for b_start, b_end in boundaries[i + 1:]:
            for u in range(a_start, a_end):
                for v in range(b_start, b_end):
                    graph.add_edge(u, v)
    return graph


def turan_graph(n: int, r: int) -> Graph:
    """Turán graph T(n, r): complete r-partite graph with near-equal part sizes."""
    _require(n >= 0, "n must be non-negative")
    _require(r >= 1, "r must be positive")
    base, extra = divmod(n, r)
    sizes = [base + 1 if i < extra else base for i in range(r)]
    return complete_multipartite_graph(sizes)


def split_graph(clique_size: int, independent_size: int, attach_p: float = 0.5,
                seed: Optional[int] = None) -> Graph:
    """A split graph: a clique plus an independent set with random cross edges.

    Split graphs are a stress test for the coloring-based bound: the
    independent-set side forces many colour classes of size 1.
    """
    _require(clique_size >= 0 and independent_size >= 0, "sizes must be non-negative")
    _require(0.0 <= attach_p <= 1.0, "attach_p must be in [0, 1]")
    rng = random.Random(seed)
    n = clique_size + independent_size
    graph = Graph(vertices=range(n))
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v)
    for u in range(clique_size, n):
        for v in range(clique_size):
            if rng.random() < attach_p:
                graph.add_edge(u, v)
    return graph
