"""Connected components and related connectivity helpers."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from .graph import Graph, Vertex

__all__ = [
    "connected_components",
    "largest_component",
    "is_connected",
    "bfs_distances",
    "diameter_lower_bound",
]


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """Return the connected components as a list of vertex sets.

    Components are returned in discovery order (deterministic for a fixed
    graph construction order).
    """
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in graph:
        if start in seen:
            continue
        comp: Set[Vertex] = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    comp.add(u)
                    queue.append(u)
        components.append(comp)
    return components


def largest_component(graph: Graph) -> Graph:
    """Return the subgraph induced by the largest connected component.

    For an empty graph, an empty graph is returned.
    """
    comps = connected_components(graph)
    if not comps:
        return Graph()
    biggest = max(comps, key=len)
    return graph.subgraph(biggest)


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if the graph is connected (the empty graph counts as connected)."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Return BFS distances from ``source`` to every reachable vertex."""
    dist: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def diameter_lower_bound(graph: Graph, source: Optional[Vertex] = None) -> int:
    """Return the eccentricity of ``source`` (a lower bound on the diameter).

    With ``source=None``, an arbitrary vertex is used.  Returns 0 for graphs
    with fewer than two vertices.
    """
    if graph.num_vertices < 2:
        return 0
    if source is None:
        source = next(iter(graph))
    dist = bfs_distances(graph, source)
    return max(dist.values())
