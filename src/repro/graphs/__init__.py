"""Graph substrate: data structure, decompositions, generators, and I/O.

This subpackage contains everything the kDC solver and its baselines need
from a graph library: the :class:`Graph` adjacency-set structure, degeneracy
ordering / k-core / k-truss decompositions, greedy coloring, connected
components, descriptive statistics, file I/O, and the synthetic generators
that stand in for the paper's benchmark collections.
"""

from .coloring import color_classes, greedy_coloring, is_proper_coloring
from .components import (
    bfs_distances,
    connected_components,
    diameter_lower_bound,
    is_connected,
    largest_component,
)
from .degeneracy import DegeneracyResult, core_numbers, degeneracy, degeneracy_ordering
from .generators import (
    barabasi_albert_graph,
    complete_graph,
    complete_multipartite_graph,
    cycle_graph,
    gnm_random_graph,
    gnp_random_graph,
    mesh_graph,
    path_graph,
    planted_defective_clique_graph,
    powerlaw_cluster_graph,
    relaxed_caveman_graph,
    social_network_graph,
    split_graph,
    star_graph,
    turan_graph,
)
from .graph import Edge, Graph, Vertex
from .io import (
    load_graph,
    read_dimacs,
    read_edge_list,
    read_metis,
    save_graph,
    write_dimacs,
    write_edge_list,
    write_metis,
)
from .kcore import core_reduce_in_place, k_core, k_core_vertices
from .paper_figures import (
    figure1_graph,
    figure2_graph,
    figure4_graph,
    figure5_graph,
    figure5_partition,
    figure6_graph,
)
from .stats import GraphStats, clustering_coefficient, degree_histogram, graph_stats
from .truss import edge_support, k_truss, k_truss_edges, truss_reduce_in_place

__all__ = [
    "Graph",
    "Vertex",
    "Edge",
    "DegeneracyResult",
    "degeneracy_ordering",
    "core_numbers",
    "degeneracy",
    "k_core",
    "k_core_vertices",
    "core_reduce_in_place",
    "k_truss",
    "k_truss_edges",
    "edge_support",
    "truss_reduce_in_place",
    "greedy_coloring",
    "color_classes",
    "is_proper_coloring",
    "connected_components",
    "largest_component",
    "is_connected",
    "bfs_distances",
    "diameter_lower_bound",
    "GraphStats",
    "graph_stats",
    "clustering_coefficient",
    "degree_histogram",
    "gnp_random_graph",
    "gnm_random_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "relaxed_caveman_graph",
    "planted_defective_clique_graph",
    "social_network_graph",
    "mesh_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "complete_multipartite_graph",
    "turan_graph",
    "split_graph",
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_metis",
    "write_metis",
    "load_graph",
    "save_graph",
    "figure1_graph",
    "figure2_graph",
    "figure4_graph",
    "figure5_graph",
    "figure5_partition",
    "figure6_graph",
]
