"""Descriptive statistics of graphs used by the dataset and benchmark layers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .components import connected_components
from .degeneracy import degeneracy_ordering
from .graph import Graph, Vertex

__all__ = ["GraphStats", "graph_stats", "clustering_coefficient", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """A compact structural summary of a graph.

    Attributes mirror the quantities the paper reports about its benchmark
    collections (vertex/edge counts, density, degeneracy) plus a few extra
    values that are useful when describing synthetic substitutes.
    """

    num_vertices: int
    num_edges: int
    density: float
    max_degree: int
    min_degree: int
    avg_degree: float
    degeneracy: int
    num_components: int
    clustering: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (handy for tabulation)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "density": self.density,
            "max_degree": self.max_degree,
            "min_degree": self.min_degree,
            "avg_degree": self.avg_degree,
            "degeneracy": self.degeneracy,
            "num_components": self.num_components,
            "clustering": self.clustering,
        }


def clustering_coefficient(graph: Graph) -> float:
    """Return the average local clustering coefficient.

    Vertices of degree < 2 contribute 0, the usual convention.  Quadratic in
    the neighbourhood sizes; intended for the moderate graphs in this repo.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    total = 0.0
    for v in graph:
        nbrs = list(graph.neighbors(v))
        d = len(nbrs)
        if d < 2:
            continue
        links = 0
        nbr_set = graph.neighbors(v)
        for i, u in enumerate(nbrs):
            u_adj = graph.neighbors(u)
            for w in nbrs[i + 1:]:
                if w in u_adj:
                    links += 1
        total += 2.0 * links / (d * (d - 1))
    return total / n


def degree_histogram(graph: Graph) -> List[int]:
    """Return ``hist`` where ``hist[d]`` counts vertices of degree ``d``."""
    degrees = graph.degrees()
    if not degrees:
        return []
    hist = [0] * (max(degrees.values()) + 1)
    for d in degrees.values():
        hist[d] += 1
    return hist


def graph_stats(graph: Graph) -> GraphStats:
    """Compute a :class:`GraphStats` summary of ``graph``."""
    n = graph.num_vertices
    m = graph.num_edges
    degrees = graph.degrees()
    if n:
        max_deg = max(degrees.values())
        min_deg = min(degrees.values())
        avg_deg = 2.0 * m / n
    else:
        max_deg = min_deg = 0
        avg_deg = 0.0
    return GraphStats(
        num_vertices=n,
        num_edges=m,
        density=graph.density(),
        max_degree=max_deg,
        min_degree=min_deg,
        avg_degree=avg_deg,
        degeneracy=degeneracy_ordering(graph).degeneracy,
        num_components=len(connected_components(graph)),
        clustering=clustering_coefficient(graph),
    )
