"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised when an operation on a :class:`~repro.graphs.Graph` is invalid.

    Examples include adding a self-loop, removing a vertex that does not
    exist, or querying the neighbourhood of an unknown vertex.
    """


class VertexNotFoundError(GraphError, KeyError):
    """Raised when a vertex referenced by an operation is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge referenced by an operation is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """Raised when a self-loop would be created in a simple graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self-loop on vertex {vertex!r} is not allowed in a simple graph")
        self.vertex = vertex


class GraphFormatError(ReproError, ValueError):
    """Raised when a graph file cannot be parsed."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when a solver, generator, or experiment parameter is invalid."""


class SolverError(ReproError):
    """Base class for errors raised by the branch-and-bound solvers."""


class ServiceError(ReproError):
    """Base class for errors raised by the solver service layer."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a :class:`SolverService` after ``close()``.

    Submissions racing a concurrent ``close()`` raise this (catchable,
    derives from :class:`ReproError`) instead of leaking the executor's raw
    ``RuntimeError("cannot schedule new futures after shutdown")``.  Requests
    still queued when a graceful drain's deadline expires fail with it too.
    """

    def __init__(self, message: str = "service is closed; cannot accept new requests") -> None:
        super().__init__(message)


class DeadlineExceededError(ServiceError):
    """Raised when a request's end-to-end deadline expires before its answer.

    The deadline covers the *whole* request — queue wait, artifact
    preparation, and the solve itself.  A request whose deadline expires
    while still queued is cancelled without entering the engine; one whose
    deadline interrupts the solve reports the best size found so far in the
    message.  Distinct from a ``time_limit`` budget, which bounds only the
    solve phase and returns a partial (``optimal=False``) result instead of
    raising.
    """

    def __init__(self, message: str = "request deadline exceeded") -> None:
        super().__init__(message)


class ServiceOverloadedError(ServiceError):
    """Raised when admission control sheds a request instead of queueing it.

    Carries ``retry_after`` — the service's estimate (in seconds) of when
    capacity frees up — so well-behaved clients can back off instead of
    hammering an overloaded service.
    """

    def __init__(
        self,
        message: str = "service overloaded; request shed",
        retry_after: float = 1.0,
        queue_depth: int = 0,
    ) -> None:
        super().__init__(f"{message} (queue depth {queue_depth}, retry after {retry_after:.2f}s)")
        self.retry_after = retry_after
        self.queue_depth = queue_depth


class ClientTimeoutError(ServiceError):
    """Raised when a :class:`~repro.service.client.Client` socket read times out.

    After a timeout the connection's request/reply pairing is unknown (a
    late reply could be mis-attributed to the next request), so the client
    marks itself broken and refuses further requests — reconnect instead.
    """

    def __init__(self, message: str = "timed out waiting for a service reply") -> None:
        super().__init__(message)


class UnknownGraphError(ServiceError, KeyError):
    """Raised when a service request references a graph digest not in the store."""

    def __init__(self, digest: str) -> None:
        super().__init__(f"no graph with digest {digest!r} in the store")
        self.digest = digest


class BudgetExceededError(SolverError):
    """Raised internally when a solver exceeds its time or node budget.

    The public solver entry points catch this exception and return a
    :class:`~repro.core.result.SolveResult` with ``optimal=False`` instead of
    propagating it, so user code normally never sees it.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason
